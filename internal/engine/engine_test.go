package engine

import (
	"math"
	"sync"
	"testing"

	"facil/internal/llm"
	"facil/internal/soc"
)

// jetsonSystem returns the paper's primary configuration. The System is
// immutable and goroutine-safe, so all tests share one instance and its
// memoized latency caches instead of each paying a cold build.
var jetsonOnce = struct {
	sync.Once
	s   *System
	err error
}{}

func jetsonSystem(t *testing.T) *System {
	t.Helper()
	jetsonOnce.Do(func() {
		jetsonOnce.s, jetsonOnce.err = NewSystem(soc.Jetson, llm.Llama3_8B(), DefaultConfig())
	})
	if jetsonOnce.err != nil {
		t.Fatal(jetsonOnce.err)
	}
	return jetsonOnce.s
}

func TestFACILBeatsHybridStaticTTFT(t *testing.T) {
	s := jetsonSystem(t)
	for _, l := range []int{8, 16, 32, 64, 128} {
		base, err := s.TTFTStatic(HybridStatic, l)
		if err != nil {
			t.Fatal(err)
		}
		facil, err := s.TTFTStatic(FACIL, l)
		if err != nil {
			t.Fatal(err)
		}
		sp := Speedup(base, facil)
		if sp <= 1.2 {
			t.Errorf("P%d: FACIL TTFT speedup = %.2f, want > 1.2", l, sp)
		}
		if sp > 6 {
			t.Errorf("P%d: FACIL TTFT speedup = %.2f implausibly high", l, sp)
		}
	}
}

func TestTTFTSpeedupDiminishesWithPrefill(t *testing.T) {
	// Paper Fig. 13: longer prefills amortize the re-layout cost.
	s := jetsonSystem(t)
	prev := 0.0
	for i, l := range []int{8, 32, 128, 512} {
		base, err := s.TTFTStatic(HybridStatic, l)
		if err != nil {
			t.Fatal(err)
		}
		facil, err := s.TTFTStatic(FACIL, l)
		if err != nil {
			t.Fatal(err)
		}
		sp := Speedup(base, facil)
		if i > 0 && sp >= prev {
			t.Errorf("speedup not diminishing: %.2f at P%d after %.2f", sp, l, prev)
		}
		prev = sp
	}
}

func TestJetsonTTFTSpeedupInPaperBand(t *testing.T) {
	// Paper Fig. 13 Jetson geomean: 2.89x over P8-P128. Accept the
	// right ballpark (2x-4x geomean).
	s := jetsonSystem(t)
	prod := 1.0
	ls := []int{8, 16, 32, 64, 128}
	for _, l := range ls {
		base, err := s.TTFTStatic(HybridStatic, l)
		if err != nil {
			t.Fatal(err)
		}
		facil, err := s.TTFTStatic(FACIL, l)
		if err != nil {
			t.Fatal(err)
		}
		prod *= Speedup(base, facil)
	}
	geo := math.Pow(prod, 1.0/float64(len(ls)))
	if geo < 2.0 || geo > 4.0 {
		t.Errorf("Jetson TTFT geomean speedup = %.2f, paper reports 2.89", geo)
	}
}

func TestDecodeOnPIMFasterThanSoC(t *testing.T) {
	s := jetsonSystem(t)
	socStep, err := s.DecodeStepSeconds(SoCOnly, 64)
	if err != nil {
		t.Fatal(err)
	}
	pimStep, err := s.DecodeStepSeconds(FACIL, 64)
	if err != nil {
		t.Fatal(err)
	}
	sp := socStep / pimStep
	if sp < 2 {
		t.Errorf("PIM decode speedup = %.2f, want >= 2", sp)
	}
	if sp > 10 {
		t.Errorf("PIM decode speedup = %.2f implausibly high", sp)
	}
}

func TestPIMBeatsIdealNPU(t *testing.T) {
	// Paper Fig. 3: PIM decode beats even an ideal bandwidth-bound NPU
	// (3.32x on Jetson/Llama3-8B at seq 64).
	s := jetsonSystem(t)
	ideal := s.IdealNPUDecodeStepSeconds(64)
	pimStep, err := s.DecodeStepSeconds(FACIL, 64)
	if err != nil {
		t.Fatal(err)
	}
	sp := ideal / pimStep
	if sp < 2 || sp > 5 {
		t.Errorf("PIM vs ideal NPU = %.2f, paper reports 3.32", sp)
	}
}

func TestDecodeBreakdownMostlyLinear(t *testing.T) {
	// Paper Fig. 2(a): linear ops dominate (>90%) the SoC decode step.
	s := jetsonSystem(t)
	b, err := s.DecodeStepBreakdown(SoCOnly, 64)
	if err != nil {
		t.Fatal(err)
	}
	total := b.LinearSeconds + b.AttentionSeconds + b.OtherSeconds
	if frac := b.LinearSeconds / total; frac < 0.85 {
		t.Errorf("linear fraction = %.2f, want > 0.85", frac)
	}
}

func TestTTLTSpeedupAmortizesWithDecode(t *testing.T) {
	// Paper Fig. 14: the TTFT gain dilutes as decode grows; ~10% gain
	// remains at decode 64 on the paper's testbed.
	s := jetsonSystem(t)
	speedup := func(p, d int) float64 {
		base, err := s.TTLTStatic(HybridStatic, p, d)
		if err != nil {
			t.Fatal(err)
		}
		facil, err := s.TTLTStatic(FACIL, p, d)
		if err != nil {
			t.Fatal(err)
		}
		return Speedup(base, facil)
	}
	short := speedup(64, 8)
	long := speedup(64, 256)
	if short <= long {
		t.Errorf("TTLT speedup not amortizing: d8=%.3f d256=%.3f", short, long)
	}
	if long < 1.0 {
		t.Errorf("FACIL TTLT slower than baseline at long decode: %.3f", long)
	}
	mid := speedup(64, 64)
	if mid < 1.02 || mid > 1.6 {
		t.Errorf("TTLT speedup at P64/D64 = %.3f, paper reports ~1.1", mid)
	}
}

func TestHybridDynamicNeverWorseThanStatic(t *testing.T) {
	s := jetsonSystem(t)
	for _, l := range []int{1, 2, 4, 8, 32, 128} {
		st, err := s.TTFT(HybridStatic, l)
		if err != nil {
			t.Fatal(err)
		}
		dy, err := s.TTFT(HybridDynamic, l)
		if err != nil {
			t.Fatal(err)
		}
		if dy > st+1e-12 {
			t.Errorf("P%d: dynamic TTFT %.4f worse than static %.4f", l, dy, st)
		}
	}
}

func TestPrefillThresholdOrdering(t *testing.T) {
	// FACIL pays no re-layout, so its SoC route wins at a shorter
	// prefill than the hybrid's (which must amortize the re-layout).
	s := jetsonSystem(t)
	facilTh, err := s.PrefillThreshold(FACIL)
	if err != nil {
		t.Fatal(err)
	}
	hybridTh, err := s.PrefillThreshold(HybridDynamic)
	if err != nil {
		t.Fatal(err)
	}
	if facilTh > hybridTh {
		t.Errorf("FACIL threshold %d > hybrid threshold %d", facilTh, hybridTh)
	}
	if hybridTh <= 1 {
		t.Errorf("hybrid threshold = %d, expected re-layout to push it up", hybridTh)
	}
}

func TestWeightDuplicationFootprint(t *testing.T) {
	s := jetsonSystem(t)
	if s.WeightFootprint(WeightDuplication) != 2*s.WeightFootprint(FACIL) {
		t.Error("duplication footprint not 2x")
	}
	// And its TTFT matches SoC-only prefill (conventional copy, no
	// re-layout).
	a, err := s.TTFTStatic(WeightDuplication, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.TTFTStatic(SoCOnly, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("duplication TTFT %g != SoC-only %g", a, b)
	}
}

func TestSoCOnlyTTLTSuffersInDecode(t *testing.T) {
	// Paper Sec. VI-C: SoC-only can give fast TTFT but loses badly in
	// TTLT (3.55x on Alpaca).
	s := jetsonSystem(t)
	socT, err := s.TTLT(SoCOnly, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	facilT, err := s.TTLT(FACIL, 32, 64)
	if err != nil {
		t.Fatal(err)
	}
	if sp := socT / facilT; sp < 2 {
		t.Errorf("FACIL TTLT speedup over SoC-only = %.2f, want >= 2", sp)
	}
}

func TestAllPlatformsConstruct(t *testing.T) {
	models := map[string]llm.Model{
		soc.Jetson.Name:  llm.Llama3_8B(),
		soc.Macbook.Name: llm.Llama3_8B(),
		soc.IdeaPad.Name: llm.OPT_6_7B(),
		soc.IPhone.Name:  llm.Phi1_5(),
	}
	for _, p := range soc.All() {
		s, err := NewSystem(p, models[p.Name], DefaultConfig())
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		ttft, err := s.TTFTStatic(FACIL, 16)
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if ttft <= 0 || ttft > 10 {
			t.Errorf("%s: FACIL TTFT = %g s implausible", p.Name, ttft)
		}
	}
}

func TestValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.OtherFraction = 1.5
	if _, err := NewSystem(soc.Jetson, llm.Llama3_8B(), bad); err == nil {
		t.Error("OtherFraction > 1 accepted")
	}
	s := jetsonSystem(t)
	if _, err := s.TTFT(FACIL, 0); err == nil {
		t.Error("zero prefill accepted")
	}
	if _, err := s.DecodeSeconds(FACIL, 8, 0); err == nil {
		t.Error("zero decode accepted")
	}
	if _, err := s.DecodeStepSeconds(Kind(99), 8); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		SoCOnly: "SoC-only", HybridStatic: "hybrid static",
		HybridDynamic: "hybrid dynamic", FACIL: "FACIL",
		WeightDuplication: "weight duplication",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	if len(Kinds()) != 5 {
		t.Errorf("Kinds() = %v", Kinds())
	}
}
