package engine

import (
	"fmt"

	"facil/internal/mapping"
	"facil/internal/soc"
)

// otherStepSeconds is the non-linear per-token SoC work of one decode
// step: a fixed cost anchored to the platform's SoC decode-linear time so
// the paper's Fig. 2(a) breakdown (>90% linear) holds, and so PIM offload
// cannot accelerate it (Amdahl).
func (s *System) otherStepSeconds() float64 {
	return s.cfg.OtherFraction * s.socDecodeLinearSeconds()
}

// socDecodeLinearSeconds is one decode step's linear (GEMV) time on the
// SoC with weights in their preferred layout.
func (s *System) socDecodeLinearSeconds() float64 {
	var t float64
	for _, op := range s.Model.DecodeLinears() {
		t += s.Platform.Seconds(op)
	}
	return t
}

// socAttentionSeconds is the SoC time to read the KV cache at context ctx
// (memory-bound).
func (s *System) socAttentionSeconds(ctx int) float64 {
	if ctx <= 0 {
		return 0
	}
	return float64(s.Model.AttentionBytesPerStep(ctx)) / (s.Platform.EffectiveBWGBs() * 1e9)
}

// pimLinearStepSeconds is one decode step's linear time on PIM: every
// weight matrix streamed through the bank PUs, plus the SoC-side reduction
// of column-partitioned partial sums.
func (s *System) pimLinearStepSeconds() (float64, error) {
	var t float64
	for _, pw := range s.weights {
		r, err := s.pimDev.GEMV(pw.matrix)
		if err != nil {
			return 0, err
		}
		t += float64(pw.count) * r.Seconds
		if r.PartialSums > 1 {
			// SoC reduces PartialSums partials per output element:
			// read all partials, write the result.
			bytes := float64(r.PartialSums+1) * float64(pw.matrix.Rows) * float64(pw.matrix.DTypeBytes)
			t += float64(pw.count) * bytes / (s.Platform.EffectiveBWGBs() * 1e9)
		}
	}
	return t, nil
}

// pimAttentionSeconds is the decode-attention time on PIM at context ctx:
// two KV-cache GEMVs (scores and weighted sum) per layer.
func (s *System) pimAttentionSeconds(ctx int) (float64, error) {
	if ctx <= 0 {
		return 0, nil
	}
	kv := s.Model.AttentionKVMatrix(ctx)
	r, err := s.pimDev.GEMV(kv)
	if err != nil {
		return 0, err
	}
	return 2 * float64(s.Model.Layers) * r.Seconds, nil
}

// prefillSoCSeconds is the prefill GEMM time on the SoC at length l.
// pimLayout applies the platform's conservative Table III slowdown.
// The (1 + OtherFraction) factor covers the non-linear prefill work.
func (s *System) prefillSoCSeconds(l int, pimLayout bool) float64 {
	var t float64
	for _, op := range s.Model.PrefillLinears(l) {
		if pimLayout {
			t += s.Platform.SecondsOnPIMLayout(op)
		} else {
			t += s.Platform.Seconds(op)
		}
	}
	return t * (1 + s.cfg.OtherFraction)
}

// prefillPIMSeconds runs the whole prefill on PIM: l GEMV passes over the
// weights (tall-and-skinny GEMM), causal attention over the growing KV
// cache, and the per-token non-linear work on the SoC.
func (s *System) prefillPIMSeconds(l int) (float64, error) {
	lin, err := s.pimLinearStepSeconds()
	if err != nil {
		return 0, err
	}
	t := float64(l) * (lin + s.otherStepSeconds())
	for ctx := 1; ctx < l; ctx++ {
		at, err := s.pimAttentionSeconds(ctx)
		if err != nil {
			return 0, err
		}
		t += at
	}
	return t, nil
}

// relayoutAllWeightsSeconds is the on-demand re-layout cost of one full
// prefill pass in the hybrid baseline: every weight matrix is copied from
// its PIM mapping into a conventional scratch buffer before its GEMM
// (paper Fig. 5(b); the transient copy keeps peak memory near one matrix).
func (s *System) relayoutAllWeightsSeconds() (float64, error) {
	var t float64
	for _, pw := range s.weights {
		res, err := s.relayout.Cost(pw.sel.ID, mapping.ConventionalMapID, pw.matrix.PaddedBytes())
		if err != nil {
			return 0, err
		}
		t += float64(pw.count) * res.Seconds
	}
	return t, nil
}

// RelayoutAllWeightsSeconds exposes the full-model re-layout cost for
// ablation studies (e.g. the on-demand vs all-at-once policy comparison).
func (s *System) RelayoutAllWeightsSeconds() (float64, error) {
	return s.relayoutAllWeightsSeconds()
}

// DecodeStepSeconds returns one decode step's latency at context length
// ctx under a design. Results are memoized.
func (s *System) DecodeStepSeconds(k Kind, ctx int) (float64, error) {
	return s.decodeCache.Do(decodeKey{kind: k, ctx: ctx}, func() (float64, error) {
		switch k {
		case SoCOnly:
			return s.socDecodeLinearSeconds() + s.socAttentionSeconds(ctx) + s.otherStepSeconds(), nil
		case HybridStatic, HybridDynamic, FACIL, WeightDuplication:
			lin, err := s.pimLinearStepSeconds()
			if err != nil {
				return 0, err
			}
			at, err := s.pimAttentionSeconds(ctx)
			if err != nil {
				return 0, err
			}
			return lin + at + s.otherStepSeconds(), nil
		default:
			return 0, fmt.Errorf("engine: unknown design %v", k)
		}
	})
}

// IdealNPUDecodeStepSeconds is the paper's Fig. 3 comparator: a
// hypothetical NPU with infinite FLOPS and 100% utilization of the peak
// memory bandwidth — its decode step is pure memory traffic at peak.
func (s *System) IdealNPUDecodeStepSeconds(ctx int) float64 {
	var bytes float64
	for _, op := range s.Model.DecodeLinears() {
		bytes += op.Bytes()
	}
	bytes += float64(s.Model.AttentionBytesPerStep(ctx))
	return bytes / (s.Platform.PeakBWGBs() * 1e9)
}

// PIMStepBreakdown reports one decode step's components for a PIM design
// (Fig. 2(a)-style breakdown on the PIM side).
type PIMStepBreakdown struct {
	LinearSeconds    float64
	AttentionSeconds float64
	OtherSeconds     float64
}

// DecodeStepBreakdown decomposes one decode step of design k at ctx. The
// linear component includes partial-sum reduction.
func (s *System) DecodeStepBreakdown(k Kind, ctx int) (PIMStepBreakdown, error) {
	var b PIMStepBreakdown
	b.OtherSeconds = s.otherStepSeconds()
	if k == SoCOnly {
		b.LinearSeconds = s.socDecodeLinearSeconds()
		b.AttentionSeconds = s.socAttentionSeconds(ctx)
		return b, nil
	}
	lin, err := s.pimLinearStepSeconds()
	if err != nil {
		return b, err
	}
	at, err := s.pimAttentionSeconds(ctx)
	if err != nil {
		return b, err
	}
	b.LinearSeconds = lin
	b.AttentionSeconds = at
	return b, nil
}

// SoCDecodeLinears exposes the per-matrix decode GEMV shapes with their
// SoC utilizations (Fig. 2(b)).
func (s *System) SoCDecodeLinears() []soc.Linear {
	return s.Model.DecodeLinears()
}
