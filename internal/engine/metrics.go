package engine

import "fmt"

// PrefillThreshold returns the smallest prefill length at which the SoC
// path (including any re-layout the design pays) beats running the
// prefill on PIM. The paper profiles this offline for the hybrid-dynamic
// baseline and for FACIL (Sec. VI-C).
func (s *System) PrefillThreshold(k Kind) (int, error) {
	const maxProbe = 512
	for l := 1; l <= maxProbe; l++ {
		socT, err := s.prefillPathSoC(k, l)
		if err != nil {
			return 0, err
		}
		pimT, err := s.prefillPIMSeconds(l)
		if err != nil {
			return 0, err
		}
		if socT < pimT {
			return l, nil
		}
	}
	return maxProbe + 1, nil
}

// prefillPathSoC is the SoC prefill route of a design: FACIL reads the
// PIM layout directly (slowdown, no re-layout); the hybrid designs
// re-layout first; the rest use the conventional copy.
func (s *System) prefillPathSoC(k Kind, l int) (float64, error) {
	switch k {
	case FACIL:
		return s.prefillSoCSeconds(l, true), nil
	case HybridStatic, HybridDynamic:
		re, err := s.relayoutAllWeightsSeconds()
		if err != nil {
			return 0, err
		}
		return re + s.prefillSoCSeconds(l, false), nil
	case SoCOnly, WeightDuplication:
		return s.prefillSoCSeconds(l, false), nil
	default:
		return 0, fmt.Errorf("engine: unknown design %v", k)
	}
}

// TTFT returns the time-to-first-token of a design at prefill length l.
func (s *System) TTFT(k Kind, l int) (float64, error) {
	if l <= 0 {
		return 0, fmt.Errorf("engine: prefill length %d must be positive", l)
	}
	socT, err := s.prefillPathSoC(k, l)
	if err != nil {
		return 0, err
	}
	switch k {
	case HybridDynamic, FACIL:
		// These designs route short prefills to PIM.
		pimT, err := s.prefillPIMSeconds(l)
		if err != nil {
			return 0, err
		}
		if pimT < socT {
			return pimT, nil
		}
		return socT, nil
	default:
		return socT, nil
	}
}

// TTFTStatic returns FACIL's TTFT without the dynamic prefill offload
// (used for the single-query study of Figs. 13-14, where FACIL always
// runs prefill on the SoC).
func (s *System) TTFTStatic(k Kind, l int) (float64, error) {
	if l <= 0 {
		return 0, fmt.Errorf("engine: prefill length %d must be positive", l)
	}
	return s.prefillPathSoC(k, l)
}

// DecodeSeconds sums decode steps for tokens 2..decode (the first token
// comes out of prefill), with the KV context growing from prefill+1.
func (s *System) DecodeSeconds(k Kind, prefill, decode int) (float64, error) {
	if decode <= 0 {
		return 0, fmt.Errorf("engine: decode length %d must be positive", decode)
	}
	var t float64
	for step := 1; step < decode; step++ {
		st, err := s.DecodeStepSeconds(k, prefill+step)
		if err != nil {
			return 0, err
		}
		t += st
	}
	return t, nil
}

// TTLT returns the time-to-last-token for a (prefill, decode) pair.
func (s *System) TTLT(k Kind, prefill, decode int) (float64, error) {
	ttft, err := s.TTFT(k, prefill)
	if err != nil {
		return 0, err
	}
	dec, err := s.DecodeSeconds(k, prefill, decode)
	if err != nil {
		return 0, err
	}
	return ttft + dec, nil
}

// TTLTStatic is TTLT with the static prefill route (Figs. 13-14).
func (s *System) TTLTStatic(k Kind, prefill, decode int) (float64, error) {
	ttft, err := s.TTFTStatic(k, prefill)
	if err != nil {
		return 0, err
	}
	dec, err := s.DecodeSeconds(k, prefill, decode)
	if err != nil {
		return 0, err
	}
	return ttft + dec, nil
}

// Speedup divides baseline time by design time for the same query.
func Speedup(baseline, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return baseline / t
}
