package mapping

import "fmt"

// MatrixConfig describes a weight matrix handed to pimalloc (paper Fig. 7
// step 1): its dimensions and element size. Rows × Cols elements are laid
// out row-major in virtual memory.
type MatrixConfig struct {
	// Rows and Cols are the matrix dimensions in elements. For GEMV
	// y = W·x, Rows is the output dimension and Cols the input
	// dimension.
	Rows, Cols int
	// DTypeBytes is the element size (2 for FP16/BF16).
	DTypeBytes int
}

// Validate rejects non-positive dimensions.
func (m MatrixConfig) Validate() error {
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("mapping: matrix dimensions %dx%d must be positive", m.Rows, m.Cols)
	}
	switch m.DTypeBytes {
	case 1, 2, 4, 8:
		return nil
	default:
		return fmt.Errorf("mapping: unsupported element size %d", m.DTypeBytes)
	}
}

// PaddedRowBytes returns the matrix row size padded up to a power of two:
// 2^ceil(log2(cols)) * dtype (paper Fig. 9, "row_size").
func (m MatrixConfig) PaddedRowBytes() int {
	cols := 1
	for cols < m.Cols {
		cols <<= 1
	}
	return cols * m.DTypeBytes
}

// Bytes returns the unpadded matrix size.
func (m MatrixConfig) Bytes() int64 {
	return int64(m.Rows) * int64(m.Cols) * int64(m.DTypeBytes)
}

// PaddedBytes returns the allocation size using padded rows.
func (m MatrixConfig) PaddedBytes() int64 {
	return int64(m.Rows) * int64(m.PaddedRowBytes())
}

// Selection is the output of SelectMapping: the chosen MapID plus the
// placement consequences the runtime needs.
type Selection struct {
	// ID is the chosen PIM mapping.
	ID MapID
	// Partitioned reports that one matrix row exceeds the per-bank
	// share of a huge page, so the row is column-wise partitioned
	// across PUs (paper Fig. 10) and partial sums must be reduced by
	// the SoC after PIM computation.
	Partitioned bool
	// PartitionsPerRow is the number of PUs holding pieces of one
	// matrix row (1 when not partitioned).
	PartitionsPerRow int
	// RowsPerPass is how many matrix rows all PUs process together in
	// one all-bank pass (tile height): totalBanks * chunkRows /
	// PartitionsPerRow.
	RowsPerPass int
}

// SelectMapping is FACIL's user-level mapping selector (paper Fig. 9,
// generalized to both AiM- and HBM-PIM-style chunks). Given the matrix,
// memory-system and PIM configurations — all available to user software —
// it returns the MapID recorded in the page-table entries of the matrix's
// huge pages.
func SelectMapping(m MatrixConfig, mc MemoryConfig, chunk ChunkConfig) (Selection, error) {
	if err := m.Validate(); err != nil {
		return Selection{}, err
	}
	if err := mc.Validate(); err != nil {
		return Selection{}, err
	}
	if err := chunk.Validate(mc.Geometry); err != nil {
		return Selection{}, err
	}

	rowBytes := m.PaddedRowBytes()
	perBank := mc.BytesPerBank()

	sel := Selection{PartitionsPerRow: 1}
	if perBank < rowBytes {
		// A matrix row cannot fit into one bank's share of a huge
		// page: place the PU-changing bits at the MSB of the page
		// offset (MapID = max) and split each row across PUs.
		sel.ID = MaxMapID(mc)
		sel.Partitioned = true
		sel.PartitionsPerRow = rowBytes / perBank
	} else {
		sel.ID = MapID(log2(rowBytes / mc.Geometry.TransferBytes))
	}
	if min := MinMapID(mc, chunk); sel.ID < min {
		// Matrix rows smaller than a chunk still occupy a whole
		// chunk (input register granularity).
		sel.ID = min
	}
	sel.RowsPerPass = mc.Geometry.TotalBanks() * chunk.Rows / sel.PartitionsPerRow
	return sel, nil
}
