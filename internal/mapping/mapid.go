package mapping

import (
	"fmt"

	"facil/internal/dram"
)

// MapID identifies one PA-to-DA mapping in FACIL's mapping family.
//
// Definition used throughout this repository: MapID is the number of
// physical-address bits placed below the PU-changing bits (bank, rank,
// channel) inside the huge-page offset, excluding the byte-within-burst
// offset bits. Equivalently, it is log2 of the number of bytes that one
// processing unit receives contiguously before the stream moves to the
// next PU, divided by the DRAM transfer size.
//
// This makes the paper's maximum-MapID formula exact:
//
//	max(MapID) = log2( hugePageSize / (totalBankCount * transferBytes) )
//
// (Sec. IV-B). The paper's prose definitions ("bits between the PU-changing
// bits and the chunk column bits" for AiM) differ from its own formula by
// the constant chunk-column bit count; we adopt the formula's convention
// and expose the prose variant via RowBitsBelowPU.
//
// MapID 0 is reserved for the conventional mapping.
type MapID int

// ConventionalMapID marks a page using the SoC's default mapping.
const ConventionalMapID MapID = 0

// IsConventional reports whether the MapID selects the default mapping.
func (m MapID) IsConventional() bool { return m == ConventionalMapID }

// String renders the MapID.
func (m MapID) String() string {
	if m.IsConventional() {
		return "MapID(conv)"
	}
	return fmt.Sprintf("MapID(%d)", int(m))
}

// MemoryConfig is the memory-system half of the mapping-selection inputs:
// geometry plus the OS huge-page size.
type MemoryConfig struct {
	Geometry      dram.Geometry
	HugePageBytes int
}

// Validate checks the configuration.
func (mc MemoryConfig) Validate() error {
	if err := mc.Geometry.Validate(); err != nil {
		return err
	}
	if mc.HugePageBytes <= 0 || mc.HugePageBytes&(mc.HugePageBytes-1) != 0 {
		return fmt.Errorf("mapping: huge page size %d must be a positive power of two", mc.HugePageBytes)
	}
	min := mc.Geometry.TotalBanks() * mc.Geometry.TransferBytes
	if mc.HugePageBytes < min {
		return fmt.Errorf("mapping: huge page %d B cannot hold one transfer per bank (%d B)",
			mc.HugePageBytes, min)
	}
	return nil
}

// HugePageBits returns log2 of the huge page size (21 for 2 MB pages).
func (mc MemoryConfig) HugePageBits() int { return log2(mc.HugePageBytes) }

// BytesPerBank returns how much of one huge page each bank receives
// ("memory_per_bank" in the paper's Fig. 9 pseudocode).
func (mc MemoryConfig) BytesPerBank() int {
	return mc.HugePageBytes / mc.Geometry.TotalBanks()
}

// PUChangingBits returns the number of interleaving bits (bank+rank+
// channel), i.e. log2(total bank count).
func (mc MemoryConfig) PUChangingBits() int {
	g := mc.Geometry
	return g.BankBits() + g.RankBits() + g.ChannelBits()
}

// MaxMapID evaluates the paper's formula:
// log2(hugePageSize / (totalBankCount * transferBytes)).
func MaxMapID(mc MemoryConfig) MapID {
	return MapID(log2(mc.HugePageBytes / (mc.Geometry.TotalBanks() * mc.Geometry.TransferBytes)))
}

// MinMapID returns the smallest PIM-usable MapID for a chunk: every bit of
// the chunk footprint (column-low plus chunk-row bits) must sit below the
// PU-changing bits.
func MinMapID(mc MemoryConfig, chunk ChunkConfig) MapID {
	return MapID(chunk.chunkColBits(mc.Geometry) + chunk.chunkRowBits())
}

// MapIDCount returns how many distinct PIM mappings the memory controller
// must support for a chunk configuration (excluding the conventional one).
func MapIDCount(mc MemoryConfig, chunk ChunkConfig) int {
	n := int(MaxMapID(mc)) - int(MinMapID(mc, chunk)) + 1
	if n < 0 {
		return 0
	}
	return n
}

// MapIDBits returns the number of PTE bits needed to encode every
// supported mapping plus the conventional one.
func MapIDBits(mc MemoryConfig, chunk ChunkConfig) int {
	n := MapIDCount(mc, chunk) + 1 // + conventional
	bits := 0
	for (1 << bits) < n {
		bits++
	}
	return bits
}

// RowBitsBelowPU converts a MapID to the paper's AiM prose definition:
// the number of DRAM row bits between the PU-changing bits and the chunk
// column bits.
func RowBitsBelowPU(id MapID, mc MemoryConfig, chunk ChunkConfig) int {
	return int(id) - chunk.chunkColBits(mc.Geometry) - chunk.chunkRowBits()
}
