package mapping

import (
	"testing"
	"testing/quick"
)

func TestSelectMappingBasic(t *testing.T) {
	mc := testMem()
	chunk := AiMChunk(mc.Geometry)
	cases := []struct {
		name      string
		m         MatrixConfig
		wantID    MapID
		wantPart  bool
		wantParts int
	}{
		{"4096-col FP16", MatrixConfig{4096, 4096, 2}, 8, false, 1},
		{"1024-col FP16 (one chunk per row)", MatrixConfig{4096, 1024, 2}, 6, false, 1},
		{"512-col FP16 (sub-chunk row, clamped)", MatrixConfig{4096, 512, 2}, 6, false, 1},
		{"14336-col FP16 (padded to 16Ki)", MatrixConfig{4096, 14336, 2}, 10, false, 1},
		{"16384-col FP16 (exactly per-bank)", MatrixConfig{4096, 16384, 2}, 10, false, 1},
		{"32768-col FP16 (partitioned x2)", MatrixConfig{16, 32768, 2}, 10, true, 2},
		{"65536-col FP16 (partitioned x4)", MatrixConfig{16, 65536, 2}, 10, true, 4},
	}
	for _, c := range cases {
		sel, err := SelectMapping(c.m, mc, chunk)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if sel.ID != c.wantID || sel.Partitioned != c.wantPart || sel.PartitionsPerRow != c.wantParts {
			t.Errorf("%s: got %+v, want id=%d part=%v parts=%d",
				c.name, sel, c.wantID, c.wantPart, c.wantParts)
		}
	}
}

func TestSelectMappingRowsPerPass(t *testing.T) {
	mc := testMem() // 64 banks
	chunk := AiMChunk(mc.Geometry)
	sel, err := SelectMapping(MatrixConfig{4096, 4096, 2}, mc, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if sel.RowsPerPass != 64 {
		t.Errorf("RowsPerPass = %d, want 64 (one row per PU)", sel.RowsPerPass)
	}
	// Partitioned rows halve the tile height.
	sel, err = SelectMapping(MatrixConfig{16, 32768, 2}, mc, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if sel.RowsPerPass != 32 {
		t.Errorf("partitioned RowsPerPass = %d, want 32", sel.RowsPerPass)
	}
	// HBM-PIM chunks process 8 rows per PU.
	hbm := HBMPIMChunk(mc.Geometry)
	sel, err = SelectMapping(MatrixConfig{1024, 128, 2}, mc, hbm)
	if err != nil {
		t.Fatal(err)
	}
	if sel.RowsPerPass != 64*8 {
		t.Errorf("HBM-PIM RowsPerPass = %d, want 512", sel.RowsPerPass)
	}
}

func TestSelectMappingErrors(t *testing.T) {
	mc := testMem()
	chunk := AiMChunk(mc.Geometry)
	if _, err := SelectMapping(MatrixConfig{0, 10, 2}, mc, chunk); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := SelectMapping(MatrixConfig{10, 10, 3}, mc, chunk); err == nil {
		t.Error("3-byte dtype accepted")
	}
	bad := mc
	bad.HugePageBytes = 12345
	if _, err := SelectMapping(MatrixConfig{10, 10, 2}, bad, chunk); err == nil {
		t.Error("bad memory config accepted")
	}
}

func TestPaddedRowBytes(t *testing.T) {
	cases := []struct {
		cols, dtype, want int
	}{
		{4096, 2, 8192},
		{14336, 2, 32768}, // padded to 16 Ki elements
		{1, 2, 2},
		{1000, 2, 2048},
		{1024, 4, 4096},
	}
	for _, c := range cases {
		m := MatrixConfig{Rows: 1, Cols: c.cols, DTypeBytes: c.dtype}
		if got := m.PaddedRowBytes(); got != c.want {
			t.Errorf("PaddedRowBytes(%d cols x %dB) = %d, want %d", c.cols, c.dtype, got, c.want)
		}
	}
}

func TestMatrixBytes(t *testing.T) {
	m := MatrixConfig{Rows: 4096, Cols: 4096, DTypeBytes: 2}
	if got := m.Bytes(); got != 32<<20 {
		t.Errorf("Bytes = %d, want 32 MiB", got)
	}
	m = MatrixConfig{Rows: 4096, Cols: 14336, DTypeBytes: 2}
	if got, want := m.PaddedBytes(), int64(4096)*32768; got != want {
		t.Errorf("PaddedBytes = %d, want %d", got, want)
	}
}

// Property: SelectMapping always returns a MapID buildable by BuildPIM, and
// the resulting mapping round-trips addresses.
func TestSelectThenBuildProperty(t *testing.T) {
	mc := testMem()
	chunk := AiMChunk(mc.Geometry)
	f := func(rowsSeed, colsSeed uint16) bool {
		m := MatrixConfig{
			Rows:       int(rowsSeed%4096) + 1,
			Cols:       int(colsSeed%40000) + 1,
			DTypeBytes: 2,
		}
		sel, err := SelectMapping(m, mc, chunk)
		if err != nil {
			return false
		}
		if sel.ID < MinMapID(mc, chunk) || sel.ID > MaxMapID(mc) {
			return false
		}
		mp, err := BuildPIM(mc, chunk, sel.ID)
		if err != nil {
			return false
		}
		pa := uint64(m.PaddedRowBytes()) % uint64(mc.Geometry.CapacityBytes())
		a, off := mp.Translate(pa)
		return mp.Inverse(a, off) == pa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
