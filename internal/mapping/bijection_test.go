package mapping

import (
	"math/rand"
	"testing"

	"facil/internal/dram"
)

// bijectionConfigs spans the geometries the property test sweeps. The
// union of their MapID ranges (plus the conventional mapping) covers at
// least 16 distinct MapIDs, including the paper's worst-case maximum of
// 13 (Sec. IV-B) and one beyond it from a 4 MB huge page.
func bijectionConfigs() []struct {
	name string
	mc   MemoryConfig
} {
	worst := dram.Geometry{ // paper worst case: 1 channel, 1 rank, 8 banks
		Channels:        1,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		Rows:            1 << 16,
		RowBytes:        2048,
		TransferBytes:   32,
	}
	// narrow pushes MinMapID down to 1 (a 64 B row is two transfers), so
	// the sweep reaches the MapIDs a wide row can never select.
	narrow := dram.Geometry{
		Channels:        2,
		RanksPerChannel: 1,
		BanksPerRank:    4,
		Rows:            1 << 16,
		RowBytes:        64,
		TransferBytes:   32,
	}
	return []struct {
		name string
		mc   MemoryConfig
	}{
		{"worst-2MB", MemoryConfig{Geometry: worst, HugePageBytes: 2 << 20}},
		{"worst-4MB", MemoryConfig{Geometry: worst, HugePageBytes: 4 << 20}},
		{"lpddr5-2MB", testMem()},
		{"narrow-2MB", MemoryConfig{Geometry: narrow, HugePageBytes: 2 << 20}},
		{"narrow-4MB", MemoryConfig{Geometry: narrow, HugePageBytes: 4 << 20}},
		{"narrow-8MB", MemoryConfig{Geometry: narrow, HugePageBytes: 8 << 20}},
	}
}

// TestTranslateBijectionExhaustive proves, for every MapID of every
// configuration (both PIM styles plus the conventional mapping), that
// PA-to-DA translation is a bijection over the huge page: the round trip
// Inverse(Translate(pa)) == pa holds for EVERY byte address in the page,
// which gives injectivity directly, and surjectivity onto the page's
// image follows by counting. Under -short the walk samples every burst
// plus random byte offsets instead of every byte.
func TestTranslateBijectionExhaustive(t *testing.T) {
	covered := map[MapID]bool{ConventionalMapID: true}
	for _, cfg := range bijectionConfigs() {
		for _, chunk := range []ChunkConfig{AiMChunk(cfg.mc.Geometry), HBMPIMChunk(cfg.mc.Geometry)} {
			if chunk.Validate(cfg.mc.Geometry) != nil {
				continue // e.g. HBM-PIM's 8-row chunk cannot fit a 64 B row
			}
			tab, err := NewTable(cfg.mc, chunk)
			if err != nil {
				t.Fatalf("%s/%s: %v", cfg.name, chunk.Style, err)
			}
			min, max := tab.Range()
			ids := []MapID{ConventionalMapID}
			for id := min; id <= max; id++ {
				ids = append(ids, id)
				covered[id] = true
			}
			step := uint64(1)
			if testing.Short() {
				step = uint64(cfg.mc.Geometry.TransferBytes)
			}
			for _, id := range ids {
				m := tab.Lookup(id)
				for pa := uint64(0); pa < uint64(cfg.mc.HugePageBytes); pa += step {
					a, off := m.Translate(pa)
					if back := m.Inverse(a, off); back != pa {
						t.Fatalf("%s/%s %v: round trip %#x -> %v+%d -> %#x",
							cfg.name, chunk.Style, id, pa, a, off, back)
					}
				}
			}
		}
	}
	if len(covered) < 16 {
		t.Errorf("property covered only %d distinct MapIDs, want >= 16", len(covered))
	}
}

// TestInverseRoundTripsFromDA checks the opposite direction on random
// valid DRAM addresses: Translate(Inverse(a, off)) == (a, off), so the
// mapping is onto the whole device address space, not just the page.
func TestInverseRoundTripsFromDA(t *testing.T) {
	mc := testMem()
	g := mc.Geometry
	tab, err := NewTable(mc, AiMChunk(g))
	if err != nil {
		t.Fatal(err)
	}
	min, max := tab.Range()
	rng := rand.New(rand.NewSource(7))
	for id := min; id <= max; id++ {
		m := tab.Lookup(id)
		for i := 0; i < 2000; i++ {
			a := dram.Addr{
				Channel: rng.Intn(g.Channels),
				Rank:    rng.Intn(g.RanksPerChannel),
				Bank:    rng.Intn(g.BanksPerRank),
				Row:     rng.Intn(g.Rows),
				Column:  rng.Intn(g.RowBytes / g.TransferBytes),
			}
			off := rng.Intn(g.TransferBytes)
			pa := m.Inverse(a, off)
			if a2, off2 := m.Translate(pa); a2 != a || off2 != off {
				t.Fatalf("%v: DA round trip %v+%d -> %#x -> %v+%d", MapID(id), a, off, pa, a2, off2)
			}
		}
	}
}

// FuzzPIMTranslateRoundTrip fuzzes (pa, id) over the whole device: any
// physical address under any supported MapID must survive the
// Translate/Inverse round trip. Seeds cover both page boundaries and the
// MapID range ends.
func FuzzPIMTranslateRoundTrip(f *testing.F) {
	mc := testMem()
	tab, err := NewTable(mc, AiMChunk(mc.Geometry))
	if err != nil {
		f.Fatal(err)
	}
	min, max := tab.Range()
	capacity := uint64(mc.Geometry.CapacityBytes())
	f.Add(uint64(0), uint8(0))
	f.Add(uint64(mc.HugePageBytes-1), uint8(min))
	f.Add(uint64(mc.HugePageBytes), uint8(max))
	f.Add(capacity-1, uint8(max))
	f.Fuzz(func(t *testing.T, pa uint64, rawID uint8) {
		pa %= capacity
		id := MapID(int(min) + int(rawID)%(int(max)-int(min)+2) - 1) // min-1 .. max; min-1 maps conventional
		m := tab.Lookup(id)
		a, off := m.Translate(pa)
		if back := m.Inverse(a, off); back != pa {
			t.Fatalf("%v: round trip %#x -> %v+%d -> %#x", id, pa, a, off, back)
		}
	})
}
