package mapping

import (
	"math/rand"
	"testing"
)

// TestMapIDsProduceDistinctPlacements: every entry of the mapping table
// (including the conventional mapping) must place at least some page-
// offset addresses differently from every other entry — otherwise a
// MapID would be redundant and the frontend mux oversized.
func TestMapIDsProduceDistinctPlacements(t *testing.T) {
	mc := testMem()
	tab, err := NewTable(mc, AiMChunk(mc.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	min, max := tab.Range()
	ids := []MapID{ConventionalMapID}
	for id := min; id <= max; id++ {
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(3))
	samples := make([]uint64, 256)
	for i := range samples {
		samples[i] = rng.Uint64() % uint64(mc.HugePageBytes)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			mi, mj := tab.Lookup(ids[i]), tab.Lookup(ids[j])
			same := true
			for _, pa := range samples {
				ai, _ := mi.Translate(pa)
				aj, _ := mj.Translate(pa)
				if ai != aj {
					same = false
					break
				}
			}
			if same {
				t.Errorf("MapIDs %v and %v are indistinguishable on page offsets", ids[i], ids[j])
			}
		}
	}
}

// TestMapIDsAgreeOutsidePageOffset: all mappings must place the byte-
// within-burst offset identically (the SoC's cache-line view never
// changes), and within one huge page every mapping is a bijection over
// the page's bursts.
func TestMapIDsAgreeOnBurstOffset(t *testing.T) {
	mc := testMem()
	tab, err := NewTable(mc, AiMChunk(mc.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	min, max := tab.Range()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		pa := rng.Uint64() % uint64(mc.Geometry.CapacityBytes())
		_, convOff := tab.Conventional().Translate(pa)
		for id := min; id <= max; id++ {
			_, off := tab.Lookup(id).Translate(pa)
			if off != convOff {
				t.Fatalf("MapID %d changed burst offset at %#x: %d vs %d", id, pa, off, convOff)
			}
		}
	}
}

// TestPIMMappingBijectiveWithinPage: each PIM mapping permutes the bursts
// of one huge page onto a set of DRAM locations without collision.
func TestPIMMappingBijectiveWithinPage(t *testing.T) {
	mc := testMem()
	tab, err := NewTable(mc, AiMChunk(mc.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	min, max := tab.Range()
	tb := mc.Geometry.TransferBytes
	for id := min; id <= max; id++ {
		m := tab.Lookup(id)
		seen := make(map[[4]int]bool)
		for pa := 0; pa < mc.HugePageBytes; pa += tb {
			a, _ := m.Translate(uint64(pa))
			key := [4]int{a.GlobalBank(mc.Geometry), a.Row, a.Column, a.Rank}
			if seen[key] {
				t.Fatalf("MapID %d: burst collision at offset %#x", id, pa)
			}
			seen[key] = true
		}
		if len(seen) != mc.HugePageBytes/tb {
			t.Fatalf("MapID %d: %d distinct locations for %d bursts", id, len(seen), mc.HugePageBytes/tb)
		}
	}
}

// TestEveryBankGetsEqualShareOfPage: a huge page under any PIM mapping
// spreads its bytes evenly over all banks — the all-bank lock-step
// requirement in aggregate form.
func TestEveryBankGetsEqualShareOfPage(t *testing.T) {
	mc := testMem()
	tab, err := NewTable(mc, AiMChunk(mc.Geometry))
	if err != nil {
		t.Fatal(err)
	}
	min, max := tab.Range()
	g := mc.Geometry
	tb := g.TransferBytes
	want := mc.HugePageBytes / tb / g.TotalBanks()
	for id := min; id <= max; id++ {
		m := tab.Lookup(id)
		counts := make(map[int]int)
		for pa := 0; pa < mc.HugePageBytes; pa += tb {
			a, _ := m.Translate(uint64(pa))
			counts[a.GlobalBank(g)]++
		}
		if len(counts) != g.TotalBanks() {
			t.Fatalf("MapID %d: page touches %d banks, want %d", id, len(counts), g.TotalBanks())
		}
		for bank, c := range counts {
			if c != want {
				t.Fatalf("MapID %d: bank %d received %d bursts, want %d", id, bank, c, want)
			}
		}
	}
}
