package mapping

import (
	"fmt"

	"facil/internal/addr"
	"facil/internal/dram"
)

// BuildPIM constructs the full PA-to-DA mapping selected by a MapID for a
// chunk configuration (paper Fig. 8). Bits are laid out LSB to MSB inside
// the huge-page offset as:
//
//	AiM:     offset | column(chunkCol) | row(lo) | bank rank channel | row(mid)
//	HBM-PIM: offset | column(chunkColLow) | row(lo) | column(chunkRow) |
//	         bank rank channel | row(mid)
//
// where len(column)+len(row(lo)) (+len(column chunkRow)) == MapID, and
// row(mid) fills the rest of the page offset. Physical-address bits above
// the huge page provide the remaining row MSBs.
//
// When the MapID equals MaxMapID, row(mid) is empty and the PU-changing
// bits occupy the top of the page offset — the column-wise partitioned
// placement of paper Fig. 10.
func BuildPIM(mc MemoryConfig, chunk ChunkConfig, id MapID) (*addr.Mapping, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	g := mc.Geometry
	if err := chunk.Validate(g); err != nil {
		return nil, err
	}
	min, max := MinMapID(mc, chunk), MaxMapID(mc)
	if id < min || id > max {
		return nil, fmt.Errorf("mapping: MapID %d outside supported range [%d, %d]", id, min, max)
	}

	colLow := chunk.chunkColBits(g)
	colHigh := chunk.chunkRowBits()
	rowLow := int(id) - colLow - colHigh
	puBits := mc.PUChangingBits()
	rowMid := mc.HugePageBits() - g.OffsetBits() - int(id) - puBits
	if rowMid < 0 {
		return nil, fmt.Errorf("mapping: MapID %d does not fit in a %d B huge page", id, mc.HugePageBytes)
	}
	rowHigh := g.RowBits() - rowLow - rowMid
	if rowHigh < 0 {
		return nil, fmt.Errorf("mapping: geometry has only %d row bits, layout needs %d",
			g.RowBits(), rowLow+rowMid)
	}

	segs := []addr.Segment{
		{Kind: addr.FieldOffset, Bits: g.OffsetBits()},
		{Kind: addr.FieldColumn, Bits: colLow},
		{Kind: addr.FieldRow, Bits: rowLow},
		{Kind: addr.FieldColumn, Bits: colHigh},
		{Kind: addr.FieldBank, Bits: g.BankBits()},
		{Kind: addr.FieldRank, Bits: g.RankBits()},
		{Kind: addr.FieldChannel, Bits: g.ChannelBits()},
		{Kind: addr.FieldRow, Bits: rowMid},
		{Kind: addr.FieldRow, Bits: rowHigh},
	}
	name := fmt.Sprintf("PIM-%s MapID=%d", chunk.Style, id)
	return addr.New(g, name, segs)
}

// BuildConventional returns the SoC's default mapping for the geometry
// (row:rank:column:bank:channel).
func BuildConventional(g dram.Geometry) (*addr.Mapping, error) {
	return addr.Conventional(g)
}

// Table holds every mapping the memory-controller frontend can select:
// index 0 is the conventional mapping, indices MinMapID..MaxMapID are the
// PIM-optimized ones. It corresponds to the mux inputs of paper Fig. 12.
type Table struct {
	mc       MemoryConfig
	chunk    ChunkConfig
	conv     *addr.Mapping
	pim      map[MapID]*addr.Mapping
	min, max MapID
}

// NewTable precomputes the whole mapping family for one platform.
func NewTable(mc MemoryConfig, chunk ChunkConfig) (*Table, error) {
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	if err := chunk.Validate(mc.Geometry); err != nil {
		return nil, err
	}
	conv, err := BuildConventional(mc.Geometry)
	if err != nil {
		return nil, err
	}
	t := &Table{
		mc:    mc,
		chunk: chunk,
		conv:  conv,
		pim:   make(map[MapID]*addr.Mapping),
		min:   MinMapID(mc, chunk),
		max:   MaxMapID(mc),
	}
	for id := t.min; id <= t.max; id++ {
		m, err := BuildPIM(mc, chunk, id)
		if err != nil {
			return nil, err
		}
		t.pim[id] = m
	}
	return t, nil
}

// Lookup returns the mapping for a MapID; ConventionalMapID (or any ID
// outside the PIM range) resolves to the conventional mapping, mirroring
// the frontend mux default.
func (t *Table) Lookup(id MapID) *addr.Mapping {
	if m, ok := t.pim[id]; ok {
		return m
	}
	return t.conv
}

// Conventional returns the default mapping.
func (t *Table) Conventional() *addr.Mapping { return t.conv }

// Range returns the supported PIM MapID range.
func (t *Table) Range() (min, max MapID) { return t.min, t.max }

// Memory returns the memory configuration the table was built for.
func (t *Table) Memory() MemoryConfig { return t.mc }

// Chunk returns the chunk configuration the table was built for.
func (t *Table) Chunk() ChunkConfig { return t.chunk }

// Size returns the number of mappings in the table including the
// conventional one — the N of the paper's N-to-1 frontend multiplexers.
func (t *Table) Size() int { return len(t.pim) + 1 }
