// Package mapping implements FACIL's core contribution: the family of
// PIM-optimized PA-to-DA mappings parameterized by a small MapID, the
// user-level mapping selector (paper Fig. 9), and the construction of the
// concrete bit mappings consumed by the memory-controller frontend
// (paper Sec. IV-B, Fig. 8 and Fig. 10).
package mapping

import (
	"fmt"

	"facil/internal/dram"
)

// Style distinguishes the two near-bank PIM architectures the paper
// formulates mappings for.
type Style int

const (
	// StyleAiM is SK Hynix Accelerator-in-Memory: each processing unit
	// owns one bank, the input register holds a DRAM row of the input
	// vector and the output register holds one output element, so the
	// chunk dimension is (1, rowBytes/dtype) — e.g. (1, 1024) at FP16.
	StyleAiM Style = iota
	// StyleHBMPIM is Samsung HBM-PIM (FIMDRAM): two sets of 8 general
	// registers give a chunk dimension of (8, 128) at FP16.
	StyleHBMPIM
)

// String names the style.
func (s Style) String() string {
	switch s {
	case StyleAiM:
		return "AiM"
	case StyleHBMPIM:
		return "HBM-PIM"
	default:
		return fmt.Sprintf("style(%d)", int(s))
	}
}

// ChunkConfig describes the basic unit of computation of one PIM
// processing unit in bytes (paper Sec. II-C). A chunk of dimension
// (Rows, Cols) elements occupies Rows * ColBytes bytes and must be placed
// contiguously within one DRAM row.
type ChunkConfig struct {
	// Style selects the bit-layout family (Sec. IV-B).
	Style Style
	// Rows is the chunk row dimension (output register height):
	// 1 for AiM, 8 for HBM-PIM.
	Rows int
	// ColBytes is the chunk column dimension in bytes (input register
	// width): the DRAM row size for AiM (2 KB), 256 B for HBM-PIM at
	// FP16.
	ColBytes int
}

// Validate checks the chunk against a DRAM geometry: the chunk footprint
// (Rows * ColBytes) must exactly fill one DRAM row so that the whole row
// buffer feeds the PU without fragmentation.
func (c ChunkConfig) Validate(g dram.Geometry) error {
	if c.Rows <= 0 || c.Rows&(c.Rows-1) != 0 {
		return fmt.Errorf("mapping: chunk Rows %d must be a positive power of two", c.Rows)
	}
	if c.ColBytes <= 0 || c.ColBytes&(c.ColBytes-1) != 0 {
		return fmt.Errorf("mapping: chunk ColBytes %d must be a positive power of two", c.ColBytes)
	}
	if c.ColBytes < g.TransferBytes {
		return fmt.Errorf("mapping: chunk ColBytes %d smaller than transfer size %d", c.ColBytes, g.TransferBytes)
	}
	if c.Rows*c.ColBytes != g.RowBytes {
		return fmt.Errorf("mapping: chunk footprint %d B must equal DRAM row %d B",
			c.Rows*c.ColBytes, g.RowBytes)
	}
	return nil
}

// ColElems returns the chunk column dimension in elements for a datatype.
func (c ChunkConfig) ColElems(dtypeBytes int) int {
	return c.ColBytes / dtypeBytes
}

// chunkColBits returns the number of column bits holding the chunk column
// dimension: log2(ColBytes / TransferBytes).
func (c ChunkConfig) chunkColBits(g dram.Geometry) int {
	return log2(c.ColBytes / g.TransferBytes)
}

// chunkRowBits returns log2(Rows), the column bits holding the chunk row
// dimension (0 for AiM).
func (c ChunkConfig) chunkRowBits() int {
	return log2(c.Rows)
}

// AiMChunk returns the AiM chunk for a geometry: (1, rowBytes).
func AiMChunk(g dram.Geometry) ChunkConfig {
	return ChunkConfig{Style: StyleAiM, Rows: 1, ColBytes: g.RowBytes}
}

// HBMPIMChunk returns the HBM-PIM chunk for a geometry: (8, rowBytes/8).
func HBMPIMChunk(g dram.Geometry) ChunkConfig {
	return ChunkConfig{Style: StyleHBMPIM, Rows: 8, ColBytes: g.RowBytes / 8}
}

// log2 returns log2 of a positive power of two; callers validate inputs.
func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
