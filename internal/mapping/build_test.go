package mapping

import (
	"math/rand"
	"testing"

	"facil/internal/dram"
)

func TestBuildPIMRoundTrip(t *testing.T) {
	mc := testMem()
	for _, chunk := range []ChunkConfig{AiMChunk(mc.Geometry), HBMPIMChunk(mc.Geometry)} {
		for id := MinMapID(mc, chunk); id <= MaxMapID(mc); id++ {
			m, err := BuildPIM(mc, chunk, id)
			if err != nil {
				t.Fatalf("%s MapID %d: %v", chunk.Style, id, err)
			}
			rng := rand.New(rand.NewSource(int64(id)))
			max := uint64(mc.Geometry.CapacityBytes())
			for i := 0; i < 2000; i++ {
				pa := rng.Uint64() % max
				a, off := m.Translate(pa)
				if !a.Valid(mc.Geometry) {
					t.Fatalf("%s MapID %d: Translate(%#x) invalid %v", chunk.Style, id, pa, a)
				}
				if back := m.Inverse(a, off); back != pa {
					t.Fatalf("%s MapID %d: round trip %#x -> %#x", chunk.Style, id, pa, back)
				}
			}
		}
	}
}

func TestBuildPIMRange(t *testing.T) {
	mc := testMem()
	chunk := AiMChunk(mc.Geometry)
	if _, err := BuildPIM(mc, chunk, MinMapID(mc, chunk)-1); err == nil {
		t.Error("MapID below minimum accepted")
	}
	if _, err := BuildPIM(mc, chunk, MaxMapID(mc)+1); err == nil {
		t.Error("MapID above maximum accepted")
	}
}

// TestAiMPlacementInvariants checks the three optimal-placement properties
// of paper Sec. II-C for the AiM layout.
func TestAiMPlacementInvariants(t *testing.T) {
	mc := testMem()
	g := mc.Geometry
	chunk := AiMChunk(g)
	// 4096-column FP16 matrix: padded row = 8 KB, MapID = 8.
	matrix := MatrixConfig{Rows: 256, Cols: 4096, DTypeBytes: 2}
	sel, err := SelectMapping(matrix, mc, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if sel.ID != 8 || sel.Partitioned {
		t.Fatalf("selection = %+v, want MapID 8 unpartitioned", sel)
	}
	m, err := BuildPIM(mc, chunk, sel.ID)
	if err != nil {
		t.Fatal(err)
	}

	rowBytes := matrix.PaddedRowBytes()

	// (1) Chunk contiguity: every chunk sits in one bank, one DRAM row,
	// spanning consecutive columns.
	for _, base := range []uint64{0, uint64(rowBytes), uint64(5 * rowBytes), 2048} {
		first, _ := m.Translate(base)
		for b := 0; b < chunk.ColBytes; b += g.TransferBytes {
			a, _ := m.Translate(base + uint64(b))
			if a.GlobalBank(g) != first.GlobalBank(g) || a.Row != first.Row {
				t.Fatalf("chunk at %#x scattered: %v vs %v", base, a, first)
			}
			if a.Column != first.Column+b/g.TransferBytes {
				t.Fatalf("chunk at %#x non-contiguous columns: %v", base, a)
			}
		}
	}

	// (2) One matrix row entirely in one bank.
	for r := 0; r < 8; r++ {
		base := uint64(r * rowBytes)
		first, _ := m.Translate(base)
		for b := 0; b < rowBytes; b += g.TransferBytes {
			a, _ := m.Translate(base + uint64(b))
			if a.GlobalBank(g) != first.GlobalBank(g) {
				t.Fatalf("matrix row %d spans banks: %v vs %v", r, a, first)
			}
		}
	}

	// (3) Lock-step all-bank alignment: the k-th chunk of matrix rows
	// 0..totalBanks-1 sits at identical (DRAM row, column) coordinates
	// in pairwise-distinct banks.
	banks := g.TotalBanks()
	for k := 0; k < rowBytes/chunk.ColBytes; k++ {
		ref, _ := m.Translate(uint64(k * chunk.ColBytes))
		seen := map[int]bool{}
		for r := 0; r < banks; r++ {
			a, _ := m.Translate(uint64(r*rowBytes + k*chunk.ColBytes))
			if a.Row != ref.Row || a.Column != ref.Column {
				t.Fatalf("row %d chunk %d misaligned: %v vs ref %v", r, k, a, ref)
			}
			gb := a.GlobalBank(g)
			if seen[gb] {
				t.Fatalf("row %d chunk %d collides on bank %d", r, k, gb)
			}
			seen[gb] = true
		}
		if len(seen) != banks {
			t.Fatalf("chunk %d covers %d banks, want %d", k, len(seen), banks)
		}
	}
}

// TestHBMPIMPlacementInvariants checks that one HBM-PIM chunk (8 matrix
// rows x 256 B) lands in a single DRAM row of a single bank.
func TestHBMPIMPlacementInvariants(t *testing.T) {
	mc := testMem()
	g := mc.Geometry
	chunk := HBMPIMChunk(g)
	// 128-column FP16 matrix: padded row = 256 B = chunk column size.
	matrix := MatrixConfig{Rows: 1024, Cols: 128, DTypeBytes: 2}
	sel, err := SelectMapping(matrix, mc, chunk)
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildPIM(mc, chunk, sel.ID)
	if err != nil {
		t.Fatal(err)
	}
	rowBytes := matrix.PaddedRowBytes()
	// The first 8 matrix rows form one chunk: same bank, same DRAM row.
	ref, _ := m.Translate(0)
	for r := 0; r < chunk.Rows; r++ {
		for b := 0; b < rowBytes; b += g.TransferBytes {
			a, _ := m.Translate(uint64(r*rowBytes + b))
			if a.GlobalBank(g) != ref.GlobalBank(g) || a.Row != ref.Row {
				t.Fatalf("chunk row %d byte %d left the DRAM row: %v vs %v", r, b, a, ref)
			}
		}
	}
	// Matrix rows 8..15 (the next chunk) belong to a different PU.
	next, _ := m.Translate(uint64(chunk.Rows * rowBytes))
	if next.GlobalBank(g) == ref.GlobalBank(g) {
		t.Fatalf("consecutive chunks on the same PU: %v vs %v", next, ref)
	}
}

// TestPartitionedPlacement reproduces paper Fig. 10: rows larger than the
// per-bank share of a huge page are split across the PUs of different
// channels, with PU-changing bits at the MSB of the page offset.
func TestPartitionedPlacement(t *testing.T) {
	mc := testMem()
	g := mc.Geometry
	chunk := AiMChunk(g)
	// 32768-column FP16 rows = 64 KB > 32 KB per bank.
	matrix := MatrixConfig{Rows: 16, Cols: 32768, DTypeBytes: 2}
	sel, err := SelectMapping(matrix, mc, chunk)
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Partitioned {
		t.Fatal("large-row matrix not partitioned")
	}
	if sel.ID != MaxMapID(mc) {
		t.Errorf("partitioned MapID = %d, want max %d", sel.ID, MaxMapID(mc))
	}
	if sel.PartitionsPerRow != 2 {
		t.Errorf("PartitionsPerRow = %d, want 2 (64KB row / 32KB per bank)", sel.PartitionsPerRow)
	}
	m, err := BuildPIM(mc, chunk, sel.ID)
	if err != nil {
		t.Fatal(err)
	}
	rowBytes := matrix.PaddedRowBytes()
	perBank := mc.BytesPerBank()
	// One matrix row must land on exactly PartitionsPerRow distinct PUs,
	// each receiving a contiguous half.
	seen := map[int]bool{}
	for b := 0; b < rowBytes; b += g.TransferBytes {
		a, _ := m.Translate(uint64(b))
		seen[a.GlobalBank(g)] = true
	}
	if len(seen) != sel.PartitionsPerRow {
		t.Errorf("row spread over %d PUs, want %d", len(seen), sel.PartitionsPerRow)
	}
	// The first perBank bytes stay on one PU.
	ref, _ := m.Translate(0)
	for b := 0; b < perBank; b += g.TransferBytes {
		a, _ := m.Translate(uint64(b))
		if a.GlobalBank(g) != ref.GlobalBank(g) {
			t.Fatalf("first partition scattered at byte %d", b)
		}
	}
}

func TestTable(t *testing.T) {
	mc := testMem()
	chunk := AiMChunk(mc.Geometry)
	tab, err := NewTable(mc, chunk)
	if err != nil {
		t.Fatal(err)
	}
	min, max := tab.Range()
	if min != MinMapID(mc, chunk) || max != MaxMapID(mc) {
		t.Errorf("Range = [%d,%d], want [%d,%d]", min, max, MinMapID(mc, chunk), MaxMapID(mc))
	}
	if got, want := tab.Size(), MapIDCount(mc, chunk)+1; got != want {
		t.Errorf("Size = %d, want %d", got, want)
	}
	// Conventional fallback for out-of-range IDs.
	if tab.Lookup(ConventionalMapID) != tab.Conventional() {
		t.Error("MapID 0 did not resolve to conventional mapping")
	}
	if tab.Lookup(max+5) != tab.Conventional() {
		t.Error("out-of-range MapID did not fall back to conventional")
	}
	for id := min; id <= max; id++ {
		if tab.Lookup(id) == tab.Conventional() {
			t.Errorf("PIM MapID %d resolved to conventional", id)
		}
	}
	if tab.Memory().HugePageBytes != mc.HugePageBytes {
		t.Error("Memory() lost configuration")
	}
	if tab.Chunk().Style != chunk.Style {
		t.Error("Chunk() lost configuration")
	}
}

func TestBuildPIMOnRealPlatformGeometries(t *testing.T) {
	for _, spec := range []dram.Spec{
		dram.JetsonOrinLPDDR5, dram.MacbookLPDDR5,
		dram.IdeaPadLPDDR5X, dram.IPhoneLPDDR5,
	} {
		mc := MemoryConfig{Geometry: spec.Geometry, HugePageBytes: 2 << 20}
		chunk := AiMChunk(spec.Geometry)
		tab, err := NewTable(mc, chunk)
		if err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		if tab.Size() < 2 {
			t.Errorf("%s: only %d mappings", spec.Name, tab.Size())
		}
	}
}
