package mapping

import (
	"testing"

	"facil/internal/dram"
)

// testMem returns a 4-channel, 2-rank, 8-bank LPDDR5-like memory config
// with 2 MB huge pages (64 total banks, 32 KB per bank per page).
func testMem() MemoryConfig {
	return MemoryConfig{
		Geometry: dram.Geometry{
			Channels:        4,
			RanksPerChannel: 2,
			BanksPerRank:    8,
			Rows:            1 << 15,
			RowBytes:        2048,
			TransferBytes:   32,
		},
		HugePageBytes: 2 << 20,
	}
}

func TestMaxMapIDWorstCaseFromPaper(t *testing.T) {
	// Paper Sec. IV-B: single channel/rank, 8-bank LPDDR5, 2 MB huge
	// pages, 32 B transfers -> max(MapID) = log2(2MB/(8*32B)) = 13.
	mc := MemoryConfig{
		Geometry: dram.Geometry{
			Channels:        1,
			RanksPerChannel: 1,
			BanksPerRank:    8,
			Rows:            1 << 16,
			RowBytes:        2048,
			TransferBytes:   32,
		},
		HugePageBytes: 2 << 20,
	}
	if got := MaxMapID(mc); got != 13 {
		t.Errorf("MaxMapID = %d, want 13", got)
	}
	// 13 - min + 1 PIM mappings + 1 conventional must fit in 4 PTE
	// bits (paper Sec. V-A: "only four bits are required").
	chunk := AiMChunk(mc.Geometry)
	if bits := MapIDBits(mc, chunk); bits > 4 {
		t.Errorf("MapIDBits = %d, want <= 4", bits)
	}
}

func TestMaxMapIDJetson(t *testing.T) {
	mc := MemoryConfig{
		Geometry:      dram.JetsonOrinLPDDR5.Geometry,
		HugePageBytes: 2 << 20,
	}
	// 512 banks * 32 B = 16 KB -> 2 MB / 16 KB = 128 -> 7.
	if got := MaxMapID(mc); got != 7 {
		t.Errorf("Jetson MaxMapID = %d, want 7", got)
	}
}

func TestMinMapID(t *testing.T) {
	mc := testMem()
	aim := AiMChunk(mc.Geometry)
	if got := MinMapID(mc, aim); got != 6 {
		t.Errorf("AiM MinMapID = %d, want 6 (2KB chunk / 32B)", got)
	}
	hbm := HBMPIMChunk(mc.Geometry)
	// colLow = log2(256/32) = 3, chunkRowBits = 3 -> 6.
	if got := MinMapID(mc, hbm); got != 6 {
		t.Errorf("HBM-PIM MinMapID = %d, want 6", got)
	}
}

func TestMapIDCountAndBits(t *testing.T) {
	mc := testMem()
	chunk := AiMChunk(mc.Geometry)
	// max = log2(2MB/(64*32)) = 10, min = 6 -> 5 PIM mappings.
	if got := MapIDCount(mc, chunk); got != 5 {
		t.Errorf("MapIDCount = %d, want 5", got)
	}
	if got := MapIDBits(mc, chunk); got != 3 {
		t.Errorf("MapIDBits = %d, want 3 (5 PIM + 1 conventional)", got)
	}
}

func TestMemoryConfigValidate(t *testing.T) {
	mc := testMem()
	if err := mc.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := mc
	bad.HugePageBytes = 3 << 20
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two huge page accepted")
	}
	bad = mc
	bad.HugePageBytes = 1024 // smaller than one transfer per bank
	if err := bad.Validate(); err == nil {
		t.Error("too-small huge page accepted")
	}
}

func TestChunkConfigValidate(t *testing.T) {
	g := testMem().Geometry
	if err := AiMChunk(g).Validate(g); err != nil {
		t.Errorf("AiM chunk invalid: %v", err)
	}
	if err := HBMPIMChunk(g).Validate(g); err != nil {
		t.Errorf("HBM-PIM chunk invalid: %v", err)
	}
	bad := ChunkConfig{Style: StyleAiM, Rows: 1, ColBytes: 1024}
	if err := bad.Validate(g); err == nil {
		t.Error("chunk not filling a row accepted")
	}
	bad = ChunkConfig{Style: StyleAiM, Rows: 3, ColBytes: 2048}
	if err := bad.Validate(g); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
	bad = ChunkConfig{Style: StyleAiM, Rows: 1, ColBytes: 16}
	if err := bad.Validate(g); err == nil {
		t.Error("chunk smaller than transfer accepted")
	}
}

func TestChunkDimensionsFromPaper(t *testing.T) {
	g := testMem().Geometry
	aim := AiMChunk(g)
	// Paper Sec. II-C: AiM chunk is (1, 1024) at FP16 with 2 KB rows.
	if aim.Rows != 1 || aim.ColElems(2) != 1024 {
		t.Errorf("AiM chunk = (%d, %d), want (1, 1024)", aim.Rows, aim.ColElems(2))
	}
	hbm := HBMPIMChunk(g)
	// HBM-PIM chunk is (8, 128) at FP16.
	if hbm.Rows != 8 || hbm.ColElems(2) != 128 {
		t.Errorf("HBM-PIM chunk = (%d, %d), want (8, 128)", hbm.Rows, hbm.ColElems(2))
	}
}

func TestRowBitsBelowPU(t *testing.T) {
	mc := testMem()
	chunk := AiMChunk(mc.Geometry)
	// MapID 8 (8 KB rows) -> 2 row bits between PU and chunk column
	// bits (4 DRAM rows per matrix row).
	if got := RowBitsBelowPU(8, mc, chunk); got != 2 {
		t.Errorf("RowBitsBelowPU(8) = %d, want 2", got)
	}
}

func TestMapIDString(t *testing.T) {
	if got := ConventionalMapID.String(); got != "MapID(conv)" {
		t.Errorf("conventional MapID string = %q", got)
	}
	if got := MapID(7).String(); got != "MapID(7)" {
		t.Errorf("MapID(7) string = %q", got)
	}
	if !ConventionalMapID.IsConventional() || MapID(3).IsConventional() {
		t.Error("IsConventional misclassifies")
	}
}
