package fault

import (
	"math"
	"reflect"
	"testing"
)

// drain pulls up to n windows from a stream.
func drain(lf *LaneFaults, n int) []Window {
	var out []Window
	for len(out) < n {
		w, ok := lf.Next()
		if !ok {
			break
		}
		out = append(out, w)
	}
	return out
}

func TestEmptyScenario(t *testing.T) {
	var s Scenario
	if !s.Empty() {
		t.Fatal("zero scenario must be empty")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("zero scenario must validate: %v", err)
	}
	if w := drain(s.Lanes(0), 4); len(w) != 0 {
		t.Fatalf("empty scenario produced lane windows: %v", w)
	}
	if s.ThermalAt(1) {
		t.Fatal("empty scenario reports thermal throttle")
	}
}

func TestValidateRejections(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		s    Scenario
	}{
		{"nan mtbf", Scenario{LaneMTBF: nan, LaneMTTR: 1}},
		{"inf mttr", Scenario{LaneMTBF: 1, LaneMTTR: math.Inf(1)}},
		{"negative mtbf", Scenario{LaneMTBF: -1, LaneMTTR: 1}},
		{"mtbf without mttr", Scenario{LaneMTBF: 5}},
		{"inverted window", Scenario{Thermal: []Window{{Start: 2, End: 1}}}},
		{"negative window", Scenario{Thermal: []Window{{Start: -1, End: 1}}}},
		{"nan window", Scenario{Thermal: []Window{{Start: nan, End: 1}}}},
		{"overlapping windows", Scenario{Thermal: []Window{{0, 2}, {1, 3}}}},
		{"unsorted lane windows", Scenario{LaneWindows: [][]Window{{{5, 6}, {1, 2}}}}},
		{"refresh mult below 1", Scenario{Thermal: []Window{{0, 1}}, RefreshMult: 0.5}},
		{"nan refresh mult", Scenario{Thermal: []Window{{0, 1}}, RefreshMult: nan}},
		{"corrupt rate above 1", Scenario{MapIDCorruptRate: 1.5}},
		{"corrupt rate negative", Scenario{MapIDCorruptRate: -0.1}},
		{"nan corrupt rate", Scenario{MapIDCorruptRate: nan}},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.s)
		}
	}
}

func TestLaneStreamDeterministic(t *testing.T) {
	s := Scenario{Seed: 7, LaneMTBF: 10, LaneMTTR: 2}
	a := drain(s.Lanes(3), 50)
	b := drain(s.Lanes(3), 50)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, replica) produced different streams")
	}
	other := drain(s.Lanes(4), 50)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different replicas produced identical streams")
	}
}

func TestLaneStreamOrderedAndPositive(t *testing.T) {
	s := Scenario{
		Seed:        1,
		LaneMTBF:    5,
		LaneMTTR:    1,
		LaneWindows: [][]Window{{{2, 3}, {40, 45}}},
	}
	ws := drain(s.Lanes(0), 100)
	if len(ws) != 100 {
		t.Fatalf("stochastic stream ended early: %d windows", len(ws))
	}
	prev := -1.0
	sawSched := 0
	for i, w := range ws {
		if w.Duration() <= 0 {
			t.Fatalf("window %d has non-positive duration: %+v", i, w)
		}
		if w.Start < prev {
			t.Fatalf("window %d out of order: start %g after previous start %g", i, w.Start, prev)
		}
		prev = w.Start
		if w == (Window{2, 3}) || w == (Window{40, 45}) {
			sawSched++
		}
	}
	if sawSched != 2 {
		t.Fatalf("scheduled windows not merged into the stream (saw %d of 2)", sawSched)
	}
}

func TestScheduledOnlyStreamEnds(t *testing.T) {
	s := Scenario{LaneWindows: [][]Window{{{1, 2}}}}
	ws := drain(s.Lanes(0), 10)
	if len(ws) != 1 || ws[0] != (Window{1, 2}) {
		t.Fatalf("scheduled-only stream = %v, want [{1 2}]", ws)
	}
	if len(drain(s.Lanes(1), 10)) != 0 {
		t.Fatal("replica beyond LaneWindows must get no scheduled outages")
	}
}

func TestThermalAt(t *testing.T) {
	s := Scenario{Thermal: []Window{{1, 2}, {5, 8}}}
	for _, tc := range []struct {
		t    float64
		want bool
	}{{0.5, false}, {1, true}, {1.99, true}, {2, false}, {5.5, true}, {9, false}} {
		if got := s.ThermalAt(tc.t); got != tc.want {
			t.Errorf("ThermalAt(%g) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if s.EffectiveRefreshMult() != DefaultRefreshMult {
		t.Fatalf("default refresh mult = %g", s.EffectiveRefreshMult())
	}
	s.RefreshMult = 4
	if s.EffectiveRefreshMult() != 4 {
		t.Fatalf("explicit refresh mult = %g", s.EffectiveRefreshMult())
	}
}
