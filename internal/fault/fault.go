// Package fault models deterministic, seed-driven fault injection for
// the SoC-PIM serving stack: per-replica PIM-decode-lane failure and
// recovery windows (scheduled and stochastic), thermal-throttle windows
// that derate DRAM bandwidth through a raised refresh rate, and
// MapID/PTE bit corruption. A Scenario is a pure description — the
// serving simulator (internal/serve) owns the consequences (failover,
// degradation, retries), and internal/dram measures the thermal
// slowdown instead of assuming it.
//
// Everything is reproducible: the stochastic windows come from a
// per-replica PRNG derived from Scenario.Seed with a splitmix64 hash,
// so the same scenario yields byte-identical fault schedules at any
// sweep parallelism.
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultRefreshMult is the refresh-rate multiplier of a thermal window
// when Scenario.RefreshMult is zero: JEDEC-style temperature-doubled
// refresh (tREFI halved).
const DefaultRefreshMult = 2

// Window is one half-open fault interval [Start, End) in simulated
// seconds.
type Window struct {
	// Start is when the fault begins.
	Start float64
	// End is when the fault clears; must exceed Start.
	End float64
}

// Duration returns End-Start.
func (w Window) Duration() float64 { return w.End - w.Start }

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Scenario describes one fault-injection schedule. The zero value is
// the empty scenario: no faults, provably zero-impact on a run (the
// simulator draws no fault randomness and schedules no fault events).
type Scenario struct {
	// Seed drives the stochastic windows and any downstream fault
	// randomness (corruption draws, backoff jitter) so runs are
	// reproducible. Independent of the serving traffic seed.
	Seed int64

	// LaneMTBF is the mean up-time between stochastic PIM-lane
	// failures of one replica, in seconds (exponentially distributed).
	// 0 disables stochastic lane failures.
	LaneMTBF float64
	// LaneMTTR is the mean repair time of a stochastic lane failure in
	// seconds (exponentially distributed). Required positive when
	// LaneMTBF is set — a lane that never repairs would deadlock the
	// no-failover policies.
	LaneMTTR float64
	// LaneWindows holds scheduled per-replica PIM-lane outages:
	// LaneWindows[i] applies to replica i (replicas beyond the slice
	// get none). Each replica's windows must be sorted and
	// non-overlapping.
	LaneWindows [][]Window

	// Thermal holds fleet-wide thermal-throttle windows (sorted,
	// non-overlapping). Inside one, the DRAM refresh rate is raised by
	// RefreshMult and every lane slows by the *measured* throughput
	// ratio (see dram.ThrottleFactor).
	Thermal []Window
	// RefreshMult is the refresh-rate multiplier inside thermal
	// windows (0 = DefaultRefreshMult, i.e. tREFI halved).
	RefreshMult float64

	// MapIDCorruptRate is the per-admitted-query probability that the
	// query's weight-page MapID (the PTE bits of paper Fig. 11) is
	// corrupted by a flipped bit before decode starts.
	MapIDCorruptRate float64
}

// Empty reports whether the scenario injects nothing. The serving
// simulator treats an empty scenario as "fault layer off": no extra RNG
// draws, no extra events, byte-identical results to a build without the
// layer.
func (s Scenario) Empty() bool {
	return s.LaneMTBF == 0 && len(s.LaneWindows) == 0 &&
		len(s.Thermal) == 0 && s.MapIDCorruptRate == 0
}

// EffectiveRefreshMult resolves the thermal refresh multiplier.
func (s Scenario) EffectiveRefreshMult() float64 {
	if s.RefreshMult == 0 {
		return DefaultRefreshMult
	}
	return s.RefreshMult
}

// Validate rejects non-physical or non-terminating scenarios (NaN/Inf
// anywhere, unsorted or overlapping windows, stochastic failures
// without a repair rate).
func (s Scenario) Validate() error {
	if bad(s.LaneMTBF) || s.LaneMTBF < 0 {
		return fmt.Errorf("fault: LaneMTBF must be a finite non-negative duration, got %g", s.LaneMTBF)
	}
	if bad(s.LaneMTTR) || s.LaneMTTR < 0 {
		return fmt.Errorf("fault: LaneMTTR must be a finite non-negative duration, got %g", s.LaneMTTR)
	}
	if s.LaneMTBF > 0 && s.LaneMTTR <= 0 {
		return fmt.Errorf("fault: stochastic lane failures (LaneMTBF=%g) require LaneMTTR > 0", s.LaneMTBF)
	}
	for ri, ws := range s.LaneWindows {
		if err := validateWindows(fmt.Sprintf("LaneWindows[%d]", ri), ws); err != nil {
			return err
		}
	}
	if err := validateWindows("Thermal", s.Thermal); err != nil {
		return err
	}
	if bad(s.RefreshMult) || s.RefreshMult < 0 || (s.RefreshMult > 0 && s.RefreshMult < 1) {
		return fmt.Errorf("fault: RefreshMult must be 0 (default) or >= 1, got %g", s.RefreshMult)
	}
	if bad(s.MapIDCorruptRate) || s.MapIDCorruptRate < 0 || s.MapIDCorruptRate > 1 {
		return fmt.Errorf("fault: MapIDCorruptRate must be a probability in [0,1], got %g", s.MapIDCorruptRate)
	}
	return nil
}

// validateWindows checks one sorted, non-overlapping window list.
func validateWindows(name string, ws []Window) error {
	prevEnd := 0.0
	for i, w := range ws {
		if bad(w.Start) || bad(w.End) || w.Start < 0 || w.End <= w.Start {
			return fmt.Errorf("fault: %s[%d] must satisfy 0 <= Start < End with finite bounds, got [%g, %g)", name, i, w.Start, w.End)
		}
		if w.Start < prevEnd {
			return fmt.Errorf("fault: %s[%d] overlaps or precedes the previous window (start %g < previous end %g)", name, i, w.Start, prevEnd)
		}
		prevEnd = w.End
	}
	return nil
}

// bad reports a NaN or infinity.
func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// ThermalAt reports whether t falls inside a thermal-throttle window.
// Windows are sorted, so the scan stops at the first window starting
// after t.
func (s Scenario) ThermalAt(t float64) bool {
	for _, w := range s.Thermal {
		if t < w.Start {
			return false
		}
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// Lanes returns replica ri's lane-outage stream: scheduled windows
// merged with the stochastic failure/repair process, in start order.
// Each replica owns an independent PRNG derived from (Seed, ri), so
// streams are reproducible and replica-independent.
func (s Scenario) Lanes(ri int) *LaneFaults {
	lf := &LaneFaults{}
	if ri < len(s.LaneWindows) {
		lf.sched = s.LaneWindows[ri]
	}
	if s.LaneMTBF > 0 {
		lf.mtbf, lf.mttr = s.LaneMTBF, s.LaneMTTR
		lf.rng = rand.New(rand.NewSource(int64(splitmix64(uint64(s.Seed) + uint64(ri)*0x9E3779B97F4A7C15))))
	}
	return lf
}

// LaneFaults is a lazy, ordered stream of one replica's PIM-lane outage
// windows. It is not safe for concurrent use; each simulator run pulls
// from its own generators.
type LaneFaults struct {
	sched []Window
	si    int

	rng        *rand.Rand
	mtbf, mttr float64
	clock      float64 // end of the last stochastic window drawn
	stoch      Window
	haveStoch  bool
}

// Next returns the next outage window, or ok=false when the stream is
// exhausted (purely-scheduled streams end; stochastic streams are
// infinite — the consumer stops pulling once its simulation drains).
func (lf *LaneFaults) Next() (Window, bool) {
	if lf.rng != nil && !lf.haveStoch {
		up := lf.mtbf * lf.rng.ExpFloat64()
		down := lf.mttr * lf.rng.ExpFloat64()
		lf.stoch = Window{Start: lf.clock + up, End: lf.clock + up + down}
		lf.clock = lf.stoch.End
		lf.haveStoch = true
	}
	schedOK := lf.si < len(lf.sched)
	switch {
	case schedOK && (!lf.haveStoch || lf.sched[lf.si].Start <= lf.stoch.Start):
		w := lf.sched[lf.si]
		lf.si++
		return w, true
	case lf.haveStoch:
		lf.haveStoch = false
		return lf.stoch, true
	default:
		return Window{}, false
	}
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-distributed
// hash used to derive independent per-replica RNG seeds from one
// scenario seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
