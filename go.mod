module facil

go 1.22
