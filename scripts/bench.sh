#!/bin/sh
# bench.sh — regenerate the committed perf baselines (BENCH_dram.json,
# BENCH_serve.json, BENCH_cluster.json) and print the raw go-test
# micro-benchmarks for eyeballing.
#
# Run from the repo root on an otherwise idle machine:
#
#   ./scripts/bench.sh            # refresh the baselines + print benches
#
# BENCH_dram.json is the committed perf trajectory of the DRAM scheduler
# hot path: ns/request and allocs/op for the optimized channel scheduler,
# the retained reference scheduler it is measured against,
# streaming-replay throughput, and the wall times of the fig6/tab1
# headline experiments. Compare before/after numbers when touching
# internal/dram.
#
# BENCH_serve.json is the serving event loop's counterpart: full-run
# ns/query and simulated queries/sec for the timing-wheel engine against
# the retained heap ReferenceSim. Compare before/after numbers when
# touching internal/serve.
#
# BENCH_cluster.json covers the fleet router: full-run ns/query and
# queries/sec for a faulted benchmark fleet without and with the barrier
# re-route (steal) phase, plus their ratio — the price of the migration
# machinery. Compare before/after numbers when touching
# internal/cluster.
set -eu
cd "$(dirname "$0")/.."

go test ./internal/dram/ -run '^$' -bench 'BenchmarkChannelDrain|BenchmarkReferenceChannelDrain|BenchmarkReplayStream' -benchmem

go test ./internal/serve/ -run '^$' -bench 'BenchmarkSimDrain|BenchmarkReferenceSimDrain' -benchmem

go run ./cmd/facilsim -bench > BENCH_dram.json.tmp
mv BENCH_dram.json.tmp BENCH_dram.json
cat BENCH_dram.json

go run ./cmd/facilsim -benchserve > BENCH_serve.json.tmp
mv BENCH_serve.json.tmp BENCH_serve.json
cat BENCH_serve.json

go run ./cmd/facilsim -benchcluster > BENCH_cluster.json.tmp
mv BENCH_cluster.json.tmp BENCH_cluster.json
cat BENCH_cluster.json
