#!/bin/sh
# bench.sh — the single entry point for every committed perf baseline
# (BENCH_*.json in the repo root) plus the raw go-test micro-benchmarks
# for eyeballing.
#
# Run from anywhere on an otherwise idle machine:
#
#   ./scripts/bench.sh            # refresh all baselines + print benches
#
# Each suite generates to a temp file, is checked non-empty, and only
# then replaces the committed baseline, so an interrupted or failing run
# never truncates one. After all suites run, the script fails if any
# committed BENCH_*.json was NOT regenerated — adding a new baseline
# without wiring its suite into this script is an error.
#
# BENCH_dram.json is the committed perf trajectory of the DRAM scheduler
# hot path: ns/request and allocs/op for the optimized channel scheduler,
# the retained reference scheduler it is measured against,
# streaming-replay throughput, and the wall times of the fig6/tab1
# headline experiments. Compare before/after numbers when touching
# internal/dram.
#
# BENCH_serve.json is the serving event loop's counterpart: full-run
# ns/query and simulated queries/sec for the timing-wheel engine against
# the retained heap ReferenceSim. Compare before/after numbers when
# touching internal/serve.
#
# BENCH_cluster.json covers the fleet router: full-run ns/query and
# queries/sec for a faulted benchmark fleet without and with the barrier
# re-route (steal) phase, plus their ratio — the price of the migration
# machinery. Compare before/after numbers when touching
# internal/cluster.
#
# BENCH_tune.json covers the mapping auto-tuner: per-candidate cost of
# the tier-one replay estimator vs the full FR-FCFS scheduler (and their
# ratio, which the >= 100x acceptance gate enforces), end-to-end search
# throughput, and estimator-vs-scheduler top-4 rank agreement over the
# search survivors. Compare before/after numbers when touching
# internal/tune.
set -eu
cd "$(dirname "$0")/.."

# Raw micro-benchmarks (not committed; for eyeballing alongside the
# baselines).
go test ./internal/dram/ -run '^$' -bench 'BenchmarkChannelDrain|BenchmarkReferenceChannelDrain|BenchmarkReplayStream' -benchmem

go test ./internal/serve/ -run '^$' -bench 'BenchmarkSimDrain|BenchmarkReferenceSimDrain' -benchmem

go test ./internal/tune/ -run '^$' -bench 'BenchmarkEvaluatorScore|BenchmarkSearch' -benchmem

# Committed baselines: "<suite> <facilsim flag>" pairs. Every committed
# BENCH_<suite>.json must have a line here (the guard below enforces it).
suites="
dram -bench
serve -benchserve
cluster -benchcluster
tune -benchtune
"

echo "$suites" | while read -r name flag; do
	[ -n "$name" ] || continue
	go run ./cmd/facilsim "$flag" > "BENCH_$name.json.tmp"
	if ! [ -s "BENCH_$name.json.tmp" ]; then
		echo "bench.sh: $flag produced an empty BENCH_$name.json" >&2
		rm -f "BENCH_$name.json.tmp"
		exit 1
	fi
	mv "BENCH_$name.json.tmp" "BENCH_$name.json"
	cat "BENCH_$name.json"
done

# Guard: every committed baseline must belong to a suite above, so none
# can silently go stale.
for f in BENCH_*.json; do
	name=${f#BENCH_}
	name=${name%.json}
	if ! echo "$suites" | grep -q "^$name "; then
		echo "bench.sh: committed baseline $f has no suite in this script — add one or remove the file" >&2
		exit 1
	fi
done
