#!/bin/sh
# bench.sh — regenerate the DRAM scheduler perf baseline (BENCH_dram.json)
# and print the raw go-test micro-benchmarks for eyeballing.
#
# Run from the repo root on an otherwise idle machine:
#
#   ./scripts/bench.sh            # refresh BENCH_dram.json + print benches
#
# BENCH_dram.json is the committed perf trajectory: ns/request and
# allocs/op for the optimized channel scheduler, the retained reference
# scheduler it is measured against, streaming-replay throughput, and the
# wall times of the fig6/tab1 headline experiments. Compare before/after
# numbers when touching internal/dram.
set -eu
cd "$(dirname "$0")/.."

go test ./internal/dram/ -run '^$' -bench 'BenchmarkChannelDrain|BenchmarkReferenceChannelDrain|BenchmarkReplayStream' -benchmem

go run ./cmd/facilsim -bench > BENCH_dram.json.tmp
mv BENCH_dram.json.tmp BENCH_dram.json
cat BENCH_dram.json
