#!/usr/bin/env bash
# facild end-to-end smoke: start the daemon, submit a scenario, watch
# /metrics move while the run is in flight, SIGTERM it mid-service and
# assert a clean drain (exit 0, manifest flushed); then repeat the drain
# against a -drainoutage daemon with the run still in flight and assert
# the fault drill fires (outage logged, drill counters logged, run
# completes, exit 0). CI runs this on every push; it is also a local
# one-liner: scripts/facild_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

addr="localhost:${FACILD_PORT:-18327}"
out="$(mktemp -d)"
log="$out/facild.log"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$out"' EXIT

go build -o "$out/facild" ./cmd/facild
"$out/facild" -addr "$addr" -o "$out/results" >"$log" 2>&1 &
pid=$!

# Wait for the listener.
for _ in $(seq 1 50); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$addr/healthz" >/dev/null

curl -sf "http://$addr/version"
curl -sf "http://$addr/experiments" | grep -q '"serving2"'

# Submit a run sized to stay in flight long enough to observe.
run_id="$(curl -sf -X POST "http://$addr/runs" \
  -d '{"experiments": ["serving2"], "queries": 2000, "rates": "1,2", "replicas": "1,2"}' \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"

# Poll /metrics while the run advances; require >= 2 distinct live
# serve-event counts (the acceptance criterion for live observability).
distinct="$(python3 - "$addr" "$run_id" <<'PY'
import json, sys, time, urllib.request

addr, run_id = sys.argv[1], sys.argv[2]
def get(path):
    with urllib.request.urlopen(f"http://{addr}{path}") as r:
        return json.load(r)

seen = set()
deadline = time.time() + 120
while time.time() < deadline:
    state = get(f"/runs/{run_id}")["state"]
    events = get("/metrics")["serve"]["events"]
    if state == "running":
        seen.add(events)
    if state in ("done", "failed", "canceled"):
        if state != "done":
            sys.exit(f"run finished {state}")
        break
else:
    sys.exit("run did not finish")
print(len(seen))
PY
)"
echo "distinct in-flight metric snapshots: $distinct"
test "$distinct" -ge 2

curl -sf "http://$addr/runs/$run_id/report" | python3 -c 'import json,sys; json.load(sys.stdin)'
curl -sf "http://$addr/trace" | grep -q traceEvents

# Graceful drain: SIGTERM, then the process must exit 0 with the run's
# manifest flushed to disk.
kill -TERM "$pid"
wait "$pid"
rc=$?
test "$rc" -eq 0
test -s "$out/results/$run_id/manifest.json"
test -s "$out/results/$run_id/serving2.json"
grep -q "drained cleanly" "$log"

# Drain drill: restart with -drainoutage, SIGTERM while a run is in
# flight, and assert the injected outage is logged, the drill summary is
# logged, the run still completes and flushes, and the exit is clean.
drill_log="$out/facild_drill.log"
"$out/facild" -addr "$addr" -o "$out/drill" -drainoutage 30 >"$drill_log" 2>&1 &
pid=$!
for _ in $(seq 1 50); do
  curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
drill_id="$(curl -sf -X POST "http://$addr/runs" \
  -d '{"experiments": ["serving2"], "queries": 2000, "rates": "1,2", "replicas": "1,2"}' \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')"
# SIGTERM as soon as the run is observably in flight.
python3 - "$addr" "$drill_id" <<'PY'
import json, sys, time, urllib.request
addr, run_id = sys.argv[1], sys.argv[2]
deadline = time.time() + 60
while time.time() < deadline:
    with urllib.request.urlopen(f"http://{addr}/runs/{run_id}") as r:
        if json.load(r)["state"] == "running":
            sys.exit(0)
    time.sleep(0.05)
sys.exit("drill run never started")
PY
kill -TERM "$pid"
wait "$pid"
rc=$?
test "$rc" -eq 0
test -s "$out/drill/$drill_id/manifest.json"
grep -q "injecting 30s lane outage" "$drill_log"
grep -q "drain drill:" "$drill_log"
grep -q "drained cleanly" "$drill_log"
echo "facild smoke: OK"
