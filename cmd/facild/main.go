// Command facild is the long-running serving daemon over the same run
// engine as the facilsim CLI. Clients POST scenarios (the JSON schema
// facilsim records with -record) to /runs, a single background runner
// advances them in virtual time, and the process exposes live
// observability while runs are in flight:
//
//	GET  /metrics           lock-free counter snapshot (serve, DRAM, trace, runs)
//	GET  /trace             Chrome trace-event timeline (load in Perfetto)
//	GET  /runs              run lifecycle records; /runs/{id}/report for results
//	POST /reload            swap the pending queue for a new scenario
//	GET  /experiments       the experiment catalog (same source as facilsim -list)
//	GET  /version           build identity; GET /healthz liveness
//	GET  /pimalloc          live walkthrough of the public Arena mapping API
//
// SIGTERM/SIGINT drain gracefully: admission closes (503 on POST),
// queued runs are canceled, the in-flight run completes and flushes its
// manifest/exports, then the process exits 0. With -drainoutage N the
// drain doubles as a fault drill: a simulated N-virtual-second PIM-lane
// outage is injected into the in-flight run's sims, so every graceful
// stop exercises the degradation machinery and logs the outcome
// counters. See DESIGN.md §11 and EXPERIMENTS.md for curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"facil/internal/daemon"
	"facil/internal/obs"
	"facil/internal/serve"
)

func main() {
	os.Exit(mainErr())
}

// mainErr is main with an exit code so deferred cleanup runs.
func mainErr() int {
	addr := flag.String("addr", "localhost:8080", "HTTP listen address")
	par := flag.Int("par", 0, "max concurrent sweep workers per run (0 = GOMAXPROCS)")
	traceBuf := flag.Int("tracebuf", obs.DefaultCapacity, "trace ring-buffer capacity in events")
	outDir := flag.String("o", "", "mirror each run's result files plus manifest.json into DIR/<run-id>/")
	drainOutage := flag.Float64("drainoutage", 0, "inject a simulated PIM-lane outage of this many virtual seconds into the in-flight run when draining (0 = off)")
	version := flag.Bool("version", false, "print the module version and build info, then exit")
	flag.Parse()

	if *version {
		fmt.Println(obs.CurrentBuild())
		return 0
	}

	log.SetPrefix("facild: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	srv := daemon.New(daemon.Options{
		Parallelism: *par,
		TraceBuf:    *traceBuf,
		OutDir:      *outDir,
		DrainOutage: *drainOutage,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("listening on %s (%s)", *addr, obs.CurrentBuild())

	select {
	case err := <-errc:
		log.Printf("serve: %v", err)
		srv.Close()
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: close admission, let the in-flight run complete
	// and flush its exports, then shut the listener down. With
	// -drainoutage the drain doubles as a fault drill — the in-flight
	// run finishes through the degradation machinery, and the outcome
	// counters are logged for the drill record.
	if *drainOutage > 0 {
		log.Printf("signal received, draining (injecting %.0fs lane outage)", *drainOutage)
	} else {
		log.Printf("signal received, draining")
	}
	srv.Drain()
	if *drainOutage > 0 {
		snap := serve.Live.Snapshot()
		log.Printf("drain drill: %d failed, %d degraded, %d failovers across process lifetime",
			snap.Failed, snap.Degraded, snap.FailedOver)
	}
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
		return 1
	}
	log.Printf("drained cleanly")
	return 0
}
