// Command facildram is a standalone cycle-level DRAM simulator: it replays
// a physical-address trace (or a generated pattern) through a configurable
// LPDDR5 memory system under any PA-to-DA mapping and reports achieved
// bandwidth, row locality and command statistics.
//
// Usage:
//
//	facildram [flags]
//
//	facildram -gen sequential -bytes 16777216
//	facildram -gen random -n 100000 -rate 0.5
//	facildram -trace accesses.txt -mapping row:rank:bank:column:channel
//	facildram -platform macbook -gen sequential -bytes 33554432 -window 64
//	facildram -gen random -n 100000 -traceout counters.json
//
// -traceout FILE records per-channel scheduler counters (row hits and
// misses, reads/writes, activations, refresh markers) as Chrome
// trace-event JSON viewable in Perfetto (see internal/obs).
//
// -refreshmult M raises the refresh rate by M (tREFI divided by M), the
// JEDEC response to high DRAM temperature; M=2 reproduces the thermal
// throttle the serving simulator's fault layer measures its slowdown
// from.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"facil/internal/addr"
	"facil/internal/dram"
	"facil/internal/obs"
	"facil/internal/soc"
	"facil/internal/trace"
)

func main() {
	var (
		platform  = flag.String("platform", "jetson", "memory system: jetson, macbook, ideapad, iphone")
		mapLayout = flag.String("mapping", "row:rank:column:bank:channel", "PA-to-DA mapping, MSB->LSB")
		traceFile = flag.String("trace", "", "trace file (<cycle> <R|W> 0x<addr> per line)")
		gen       = flag.String("gen", "", "generate a pattern instead: sequential, random, strided")
		bytes     = flag.Int64("bytes", 8<<20, "sequential: bytes to stream")
		n         = flag.Int("n", 100000, "random/strided: request count")
		rate      = flag.Float64("rate", 1.0, "random: arrival rate, requests/cycle")
		writeFrac = flag.Float64("writefrac", 0.25, "random: write fraction")
		stride    = flag.Int64("stride", 4096, "strided: stride in bytes")
		seed      = flag.Int64("seed", 1, "random: PRNG seed")
		window    = flag.Int("window", 0, "FR-FCFS reorder window (0 = default)")
		noRefresh = flag.Bool("norefresh", false, "disable refresh")
		refMult   = flag.Float64("refreshmult", 1, "refresh-rate multiplier >= 1 (2 = temperature-doubled refresh, tREFI halved)")
		traceOut  = flag.String("traceout", "", "write per-channel counter trace (Chrome trace-event JSON) to this file")
	)
	flag.Parse()

	spec, err := specByName(*platform)
	if err != nil {
		fatal(err)
	}
	if *refMult < 1 {
		fatal(fmt.Errorf("-refreshmult must be >= 1, got %g", *refMult))
	}
	spec = spec.Derated(*refMult)
	m, err := addr.FromLayout(spec.Geometry, *mapLayout)
	if err != nil {
		fatal(err)
	}

	var entries []trace.Entry
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		entries, err = trace.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *gen == "sequential":
		entries = trace.Sequential(*bytes, spec.Geometry.TransferBytes, false)
	case *gen == "random":
		entries = trace.Random(*n, spec.Geometry.CapacityBytes(), spec.Geometry.TransferBytes, *writeFrac, *rate, *seed)
	case *gen == "strided":
		entries = trace.Strided(*n, *stride, spec.Geometry.TransferBytes)
	default:
		fatal(fmt.Errorf("provide -trace FILE or -gen sequential|random|strided"))
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	reqs := trace.ToRequests(entries, m)
	if *noRefresh || *traceOut != "" {
		// MeasureStreamWindow builds its own controller; run manually
		// when refresh must be disabled or a tracer attached.
		ctl, err := dram.NewController(spec)
		if err != nil {
			fatal(err)
		}
		ctl.SetRefreshEnabled(!*noRefresh)
		if *window > 0 {
			for i := 0; i < spec.Geometry.Channels; i++ {
				ctl.Channel(i).SetWindow(*window)
			}
		}
		var tr *obs.Tracer
		if *traceOut != "" {
			tr = obs.New(0)
			ctl.SetTracer(tr, 0)
		}
		for _, r := range reqs {
			if err := ctl.EnqueueValue(r); err != nil {
				fatal(err)
			}
		}
		cycles := ctl.Drain()
		report(spec, *mapLayout, len(reqs), cycles, ctl.Stats())
		if tr != nil {
			if err := tr.WriteFile(*traceOut); err != nil {
				fatal(err)
			}
			fmt.Printf("trace:         %s (%d events, %d dropped)\n", *traceOut, tr.Len(), tr.Dropped())
		}
		return
	}
	res, err := dram.MeasureStreamFuncWindow(spec, dram.SliceSource(reqs), *window)
	if err != nil {
		fatal(err)
	}
	report(spec, *mapLayout, len(reqs), res.Cycles, res.Stats)
}

func specByName(name string) (dram.Spec, error) {
	switch strings.ToLower(name) {
	case "jetson":
		return soc.Jetson.Spec, nil
	case "macbook":
		return soc.Macbook.Spec, nil
	case "ideapad":
		return soc.IdeaPad.Spec, nil
	case "iphone":
		return soc.IPhone.Spec, nil
	default:
		return dram.Spec{}, fmt.Errorf("facildram: unknown platform %q", name)
	}
}

func report(spec dram.Spec, layout string, n int, cycles int64, s dram.ChannelStats) {
	secs := spec.Timing.Seconds(cycles)
	bytes := (s.Reads + s.Writes) * int64(spec.Geometry.TransferBytes)
	fmt.Printf("memory:        %s\n", spec.Name)
	fmt.Printf("mapping:       %s\n", layout)
	fmt.Printf("requests:      %d (%d reads, %d writes)\n", n, s.Reads, s.Writes)
	fmt.Printf("cycles:        %d (%.3f ms)\n", cycles, secs*1e3)
	if secs > 0 {
		fmt.Printf("bandwidth:     %.2f GB/s (%.1f%% of peak %.1f)\n",
			float64(bytes)/secs/1e9,
			100*float64(bytes)/secs/1e9/spec.PeakBandwidthGBs(),
			spec.PeakBandwidthGBs())
	}
	if hm := s.RowHits + s.RowMisses; hm > 0 {
		fmt.Printf("row hit rate:  %.1f%%\n", 100*float64(s.RowHits)/float64(hm))
	}
	fmt.Printf("activations:   %d\n", s.Activations)
	fmt.Printf("refreshes:     %d\n", s.Refreshes)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "facildram:", err)
	os.Exit(1)
}
