package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"facil/internal/dram"
	"facil/internal/mapping"
	"facil/internal/tune"
)

// tuneBenchReport is the schema of BENCH_tune.json — the committed perf
// baseline for the mapping auto-tuner, next to the dram/serve/cluster
// baselines. Regenerate with scripts/bench.sh (or `go run ./cmd/facilsim
// -benchtune`) on an otherwise idle machine.
type tuneBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// TraceBursts is the canonical trace length every number below is
	// measured against (Jetson geometry, 4096x4096 fp16 matrix, one
	// 2 MiB window per phase).
	TraceBursts int `json:"trace_bursts"`

	// Tier-one estimator throughput (Score only, trace windowed as in
	// the search) vs the full FR-FCFS scheduler replaying the whole
	// trace. EstSpeedup is the per-candidate ratio the >= 100x
	// acceptance gate (TestEstimatorSpeedupGate) enforces.
	EstNsPerCandidate   float64 `json:"est_ns_per_candidate"`
	EstCandidatesPerSec float64 `json:"est_candidates_per_sec"`
	SimNsPerCandidate   float64 `json:"sim_ns_per_candidate"`
	EstSpeedup          float64 `json:"est_speedup"`

	// End-to-end search throughput: unique candidates evaluated per
	// second including genome generation, dedup, the per-candidate
	// bijection gate and Pareto maintenance.
	SearchNsPerCandidate   float64 `json:"search_ns_per_candidate"`
	SearchCandidatesPerSec float64 `json:"search_candidates_per_sec"`

	// Estimator-vs-full-sim rank agreement over the search survivors
	// (Pareto front plus the fixed MapID family): how many of the
	// estimator's top-4 the scheduler's top-4 confirms.
	RankCandidates  int `json:"rank_candidates"`
	RankOverlapTop4 int `json:"rank_overlap_top4"`
}

// tuneBenchConfig is the Jetson/Alpaca cell of the maptune experiment:
// the 16-channel geometry with the Llama-size projection matrix.
func tuneBenchConfig() (tune.Config, error) {
	spec := dram.JetsonOrinLPDDR5
	g := spec.Geometry
	mc := mapping.MemoryConfig{Geometry: g, HugePageBytes: 2 << 20}
	chunk := mapping.AiMChunk(g)
	matrix := mapping.MatrixConfig{Rows: 4096, Cols: 4096, DTypeBytes: 2}
	sel, err := mapping.SelectMapping(matrix, mc, chunk)
	if err != nil {
		return tune.Config{}, err
	}
	tr, err := tune.CaptureTrace(g, tune.TraceConfig{
		Matrix:       matrix,
		Streams:      sel.RowsPerPass,
		SampleBytes:  2 << 20,
		DecodeWeight: 65,
	})
	if err != nil {
		return tune.Config{}, err
	}
	return tune.Config{
		Spec:      spec,
		Trace:     tr,
		Baseline:  sel.ID,
		Budget:    256,
		TopK:      8,
		Seed:      7,
		EstWindow: 16384,
	}, nil
}

// runTuneBench executes the tuner benchmarks in-process and writes the
// JSON report to stdout.
func runTuneBench() int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "facilsim: -benchtune: %v\n", err)
		return 1
	}
	cfg, err := tuneBenchConfig()
	if err != nil {
		return fail(err)
	}
	rep := tuneBenchReport{
		GeneratedBy: "go run ./cmd/facilsim -benchtune (see scripts/bench.sh)",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		TraceBursts: cfg.Trace.Bursts(),
	}

	// One full search doubles as warm-up and as the survivor set the
	// rank-agreement numbers are measured over.
	res, err := tune.Search(context.Background(), cfg)
	if err != nil {
		return fail(err)
	}
	genomes := make([]tune.Genome, 0, len(res.Front)+len(res.Fixed))
	ests := make([]float64, 0, cap(genomes))
	for _, c := range res.Front {
		genomes = append(genomes, c.Genome)
		ests = append(ests, c.Cost.EstCycles)
	}
	for _, f := range res.Fixed {
		genomes = append(genomes, f.Genome)
		ests = append(ests, f.Cost.EstCycles)
	}

	// Tier-one throughput: the steady-state Score loop the search runs.
	ev, err := tune.NewEvaluator(res.Space, cfg.Trace, cfg.Spec.Timing, cfg.EstWindow)
	if err != nil {
		return fail(err)
	}
	if err := ev.SetBaseline(res.Fixed[0].Genome); err != nil {
		return fail(err)
	}
	var benchErr error
	bres := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ev.Score(genomes[i%len(genomes)]); err != nil {
				benchErr = err
				return
			}
		}
	})
	if benchErr != nil {
		return fail(benchErr)
	}
	rep.EstNsPerCandidate = float64(bres.NsPerOp())
	rep.EstCandidatesPerSec = 1e9 / rep.EstNsPerCandidate

	// Tier-two cost and rank agreement over the same survivors.
	sims := make([]float64, len(genomes))
	for i, g := range genomes {
		m, err := res.Space.Build(g)
		if err != nil {
			return fail(err)
		}
		start := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := tune.SimScore(cfg.Spec, cfg.Trace, m); err != nil {
					benchErr = err
					return
				}
			}
		})
		if benchErr != nil {
			return fail(benchErr)
		}
		rep.SimNsPerCandidate += float64(start.NsPerOp())
		sr, err := tune.SimScore(cfg.Spec, cfg.Trace, m)
		if err != nil {
			return fail(err)
		}
		sims[i] = sr.SimCycles
	}
	rep.SimNsPerCandidate /= float64(len(genomes))
	rep.EstSpeedup = rep.SimNsPerCandidate / rep.EstNsPerCandidate
	rep.RankCandidates = len(genomes)
	top4 := func(score []float64) map[int]bool {
		order := make([]int, len(score))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return score[order[a]] < score[order[b]] })
		set := map[int]bool{}
		for _, i := range order[:4] {
			set[i] = true
		}
		return set
	}
	simTop := top4(sims)
	for i := range top4(ests) {
		if simTop[i] {
			rep.RankOverlapTop4++
		}
	}

	// End-to-end search throughput (generation, dedup, bijection gate
	// and Pareto maintenance included).
	sres := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tune.Search(context.Background(), cfg); err != nil {
				benchErr = err
				return
			}
		}
	})
	if benchErr != nil {
		return fail(benchErr)
	}
	rep.SearchNsPerCandidate = float64(sres.NsPerOp()) / float64(res.Evaluated)
	rep.SearchCandidatesPerSec = 1e9 / rep.SearchNsPerCandidate

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fail(err)
	}
	return 0
}
