package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"facil/internal/engine"
	"facil/internal/llm"
	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/workload"
)

// serveBenchReport is the schema of BENCH_serve.json — the committed
// perf baseline for the serving event loop, next to BENCH_dram.json.
// Regenerate with scripts/bench.sh (or `go run ./cmd/facilsim
// -benchserve`) on an otherwise idle machine.
type serveBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// Full-run cost of the timing-wheel engine (construction + every
	// event + Finish) per simulated query, and the queries the simulator
	// pushes through per wall-clock second (the fleet-sweep currency;
	// the acceptance bar is >= 1e5 on one core).
	SimNsPerQuery    float64 `json:"sim_ns_per_query"`
	SimQueriesPerSec float64 `json:"sim_queries_per_sec"`
	// SimAllocsPerRun is the whole run's allocation count — setup only;
	// the stepping steady state allocates nothing (gated by
	// TestServeSteadyStateZeroAllocs).
	SimAllocsPerRun int64 `json:"sim_allocs_per_run"`

	// The retained heap-based ReferenceSim on the same scenario, and
	// the full-run speedup the rebuild buys (the event-loop-only ratio
	// gated by TestOptimizedSimSpeedup is higher).
	ReferenceNsPerQuery float64 `json:"reference_ns_per_query"`
	SimSpeedup          float64 `json:"sim_speedup"`
}

// serveBenchConfig mirrors internal/serve's perfConfig: heavy sustained
// load on a bounded queue, fixed-length workload, fault layer off.
func serveBenchConfig() serve.SimConfig {
	fixed := func(tokens int) workload.LengthDist {
		return workload.LengthDist{MedianTokens: float64(tokens), Min: tokens, Max: tokens}
	}
	return serve.SimConfig{
		Mode:        serve.Cooperative,
		Kind:        engine.FACIL,
		Replicas:    2,
		ArrivalRate: 50,
		Queries:     2000,
		Workload:    workload.Spec{Name: "fixed", Prefill: fixed(256), Decode: fixed(64)},
		Seed:        42,
		QueueCap:    16,
	}
}

// runServeBench executes the serving-loop benchmarks in-process and
// writes the JSON report to stdout.
func runServeBench() int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "facilsim: -benchserve: %v\n", err)
		return 1
	}
	sys, err := engine.NewSystem(soc.IPhone, llm.Phi1_5(), engine.DefaultConfig())
	if err != nil {
		return fail(err)
	}
	cfg := serveBenchConfig()

	rep := serveBenchReport{
		GeneratedBy: "go run ./cmd/facilsim -benchserve (see scripts/bench.sh)",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// Optimized engine, full run (one warm run first so the engine's
	// shared latency caches don't bill the first iteration).
	if _, err := serve.Run(sys, cfg); err != nil {
		return fail(err)
	}
	var runErr error
	optRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := serve.Run(sys, cfg); err != nil {
				runErr = err
				return
			}
		}
	})
	if runErr != nil {
		return fail(runErr)
	}
	rep.SimNsPerQuery = float64(optRes.NsPerOp()) / float64(cfg.Queries)
	rep.SimQueriesPerSec = 1e9 / rep.SimNsPerQuery
	rep.SimAllocsPerRun = optRes.AllocsPerOp()

	// Retained reference engine, same scenario.
	refRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := serve.ReferenceRun(sys, cfg); err != nil {
				runErr = err
				return
			}
		}
	})
	if runErr != nil {
		return fail(runErr)
	}
	rep.ReferenceNsPerQuery = float64(refRes.NsPerOp()) / float64(cfg.Queries)
	if rep.SimNsPerQuery > 0 {
		rep.SimSpeedup = rep.ReferenceNsPerQuery / rep.SimNsPerQuery
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fail(err)
	}
	return 0
}
