package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"facil/internal/cluster"
	"facil/internal/engine"
	"facil/internal/llm"
	"facil/internal/serve"
	"facil/internal/soc"
	"facil/internal/workload"
)

// clusterBenchReport is the schema of BENCH_cluster.json — the committed
// perf baseline for the cluster barrier/steal path, next to
// BENCH_dram.json and BENCH_serve.json. Regenerate with scripts/bench.sh
// (or `go run ./cmd/facilsim -benchcluster`) on an otherwise idle
// machine.
type clusterBenchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// Full-run cost of the cluster router (fleet construction excluded,
	// one serial run over the benchmark fleet) per routed query, without
	// and with the barrier re-route (steal) phase, plus the queries the
	// router pushes through per wall-clock second in each mode.
	NsPerQuery         float64 `json:"ns_per_query"`
	QueriesPerSec      float64 `json:"queries_per_sec"`
	StealNsPerQuery    float64 `json:"steal_ns_per_query"`
	StealQueriesPerSec float64 `json:"steal_queries_per_sec"`
	// StealOverhead is steal_ns_per_query / ns_per_query — the full-run
	// price of the migration machinery on a fleet that actually steals.
	StealOverhead float64 `json:"steal_overhead"`
}

// clusterBenchConfig is a small faulted fleet under enough load that the
// steal path does real work (round-robin piles depth onto the slow
// devices, so the re-route phase migrates continuously rather than
// no-oping).
func clusterBenchConfig(steal bool) cluster.Config {
	return cluster.Config{
		Strategy:               cluster.RoundRobin,
		ArrivalRate:            4,
		Queries:                2000,
		Workload:               workload.AlpacaSpec(),
		Seed:                   7,
		SyncInterval:           5,
		QueueCap:               8,
		DeadlineTTLT:           30,
		Policy:                 serve.PolicySoCFallback,
		BreakerThreshold:       2,
		BreakerCooldown:        60,
		DeviceBreakerThreshold: 3,
		FaultMTBF:              120,
		FaultMTTR:              20,
		FaultFraction:          0.5,
		FaultSeed:              99,
		Steal:                  steal,
		StealThreshold:         6,
		Parallelism:            1,
	}
}

// runClusterBench executes the cluster benchmarks in-process and writes
// the JSON report to stdout.
func runClusterBench() int {
	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "facilsim: -benchcluster: %v\n", err)
		return 1
	}
	fl, err := cluster.NewFleet([]cluster.DeviceClass{
		{Platform: soc.Jetson, Count: 2},
		{Platform: soc.Macbook, Count: 2},
		{Platform: soc.IPhone, Count: 4},
	}, func(c cluster.DeviceClass) (*engine.System, error) {
		m := llm.Llama3_8B()
		if c.Platform.Name == soc.IPhone.Name {
			m = llm.Phi1_5()
		}
		return engine.NewSystem(c.Platform, m, engine.DefaultConfig())
	})
	if err != nil {
		return fail(err)
	}

	rep := clusterBenchReport{
		GeneratedBy: "go run ./cmd/facilsim -benchcluster (see scripts/bench.sh)",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	bench := func(steal bool) (float64, error) {
		cfg := clusterBenchConfig(steal)
		// One warm run so shared latency caches don't bill the first
		// iteration.
		if _, err := cluster.Run(context.Background(), fl, cfg); err != nil {
			return 0, err
		}
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Run(context.Background(), fl, cfg); err != nil {
					runErr = err
					return
				}
			}
		})
		if runErr != nil {
			return 0, runErr
		}
		return float64(res.NsPerOp()) / float64(cfg.Queries), nil
	}

	if rep.NsPerQuery, err = bench(false); err != nil {
		return fail(err)
	}
	rep.QueriesPerSec = 1e9 / rep.NsPerQuery
	if rep.StealNsPerQuery, err = bench(true); err != nil {
		return fail(err)
	}
	rep.StealQueriesPerSec = 1e9 / rep.StealNsPerQuery
	if rep.NsPerQuery > 0 {
		rep.StealOverhead = rep.StealNsPerQuery / rep.NsPerQuery
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return fail(err)
	}
	return 0
}
