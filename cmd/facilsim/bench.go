package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"facil/internal/dram"
	"facil/internal/engine"
	"facil/internal/exp"
)

// benchReport is the schema of BENCH_dram.json — the committed perf
// baseline for the DRAM scheduler hot path. Regenerate with
// scripts/bench.sh (or `go run ./cmd/facilsim -bench`), on an otherwise
// idle machine, and compare against the committed file before and after
// scheduler changes.
type benchReport struct {
	GeneratedBy string `json:"generated_by"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	// Micro-benchmarks (single channel, default test LPDDR5 spec).
	ChannelDrainNsPerReq    float64 `json:"channel_drain_ns_per_req"`
	ChannelDrainAllocsPerOp int64   `json:"channel_drain_allocs_per_op"`
	ReferenceDrainNsPerReq  float64 `json:"reference_drain_ns_per_req"`
	SchedulerSpeedup        float64 `json:"scheduler_speedup"`
	ReplayStreamMBPerSec    float64 `json:"replay_stream_mb_per_sec"`

	// Headline experiment wall times (serial, -par 1).
	Fig6WallSeconds float64 `json:"fig6_wall_seconds"`
	Tab1WallSeconds float64 `json:"tab1_wall_seconds"`
	Tab1Scale       int64   `json:"tab1_scale"`
}

// benchSpec returns the single-channel spec the micro-benchmarks run on
// (matching internal/dram's benchmark spec).
func benchSpec() (dram.Spec, error) {
	return dram.LPDDR5("bench LPDDR5 1ch", 16, 6400, 2, 256<<20)
}

// benchRequests builds the locality-mixed measurement stream.
func benchRequests(spec dram.Spec, n int) []dram.Request {
	g := spec.Geometry
	cols := g.ColumnsPerRow()
	reqs := make([]dram.Request, n)
	for i := range reqs {
		reqs[i] = dram.Request{
			Addr: dram.Addr{
				Rank:   (i / cols / g.BanksPerRank) % g.RanksPerChannel,
				Bank:   (i / cols) % g.BanksPerRank,
				Row:    (i / cols / g.BanksPerRank / g.RanksPerChannel) % g.Rows,
				Column: i % cols,
			},
			Write: i%4 == 3,
		}
	}
	return reqs
}

// runBench executes the scheduler micro-benchmarks plus the headline
// experiment wall times in-process and writes the JSON report to stdout.
func runBench(ctx context.Context) int {
	spec, err := benchSpec()
	if err != nil {
		fmt.Fprintf(os.Stderr, "facilsim: -bench: %v\n", err)
		return 1
	}
	reqs := benchRequests(spec, 4096)

	rep := benchReport{
		GeneratedBy: "go run ./cmd/facilsim -bench (see scripts/bench.sh)",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Tab1Scale:   16,
	}

	// Optimized scheduler: warm channel, steady-state enqueue+drain.
	opt := dram.NewChannel(&spec)
	drainOpt := func() {
		for j := range reqs {
			opt.EnqueueValue(reqs[j])
		}
		opt.Drain()
	}
	drainOpt()
	optRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			drainOpt()
		}
	})
	rep.ChannelDrainNsPerReq = float64(optRes.NsPerOp()) / float64(len(reqs))
	rep.ChannelDrainAllocsPerOp = optRes.AllocsPerOp()

	// Reference scheduler, same stream.
	ref := dram.NewReferenceChannel(&spec)
	drainRef := func() {
		for j := range reqs {
			ref.Enqueue(&reqs[j])
		}
		ref.Drain()
	}
	drainRef()
	refRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drainRef()
		}
	})
	rep.ReferenceDrainNsPerReq = float64(refRes.NsPerOp()) / float64(len(reqs))
	if rep.ChannelDrainNsPerReq > 0 {
		rep.SchedulerSpeedup = rep.ReferenceDrainNsPerReq / rep.ChannelDrainNsPerReq
	}

	// Full streaming replay path in simulated MB per wall-clock second.
	g := spec.Geometry
	cols := g.ColumnsPerRow()
	const streamN = 1 << 16
	streamRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			emitted := 0
			_, _, err := dram.ReplayStream(spec, func(r *dram.Request) bool {
				if emitted >= streamN {
					return false
				}
				*r = dram.Request{Addr: dram.Addr{
					Bank:   (emitted / cols) % g.BanksPerRank,
					Rank:   (emitted / cols / g.BanksPerRank) % g.RanksPerChannel,
					Row:    (emitted / cols / g.BanksPerRank / g.RanksPerChannel) % g.Rows,
					Column: emitted % cols,
				}}
				emitted++
				return true
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	if ns := streamRes.NsPerOp(); ns > 0 {
		bytes := float64(streamN) * float64(g.TransferBytes)
		rep.ReplayStreamMBPerSec = bytes / (float64(ns) / 1e9) / 1e6
	}

	// Headline experiment wall times, serial so runs compare across
	// machines with different core counts.
	lab := exp.NewLab(engine.DefaultConfig())
	lab.SetParallelism(1)
	start := time.Now()
	if _, err := lab.Run(ctx, "fig6"); err != nil {
		fmt.Fprintf(os.Stderr, "facilsim: -bench: fig6: %v\n", err)
		return 1
	}
	rep.Fig6WallSeconds = time.Since(start).Seconds()

	cfg := exp.DefaultTable1Config()
	cfg.Scale = rep.Tab1Scale
	start = time.Now()
	if _, err := lab.Table1(ctx, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "facilsim: -bench: tab1: %v\n", err)
		return 1
	}
	rep.Tab1WallSeconds = time.Since(start).Seconds()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "facilsim: -bench: %v\n", err)
		return 1
	}
	return 0
}
