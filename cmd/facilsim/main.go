// Command facilsim regenerates the paper's tables and figures from the
// simulation stack.
//
// Usage:
//
//	facilsim [-list] [-par N] [-v] [-format table|csv|json] [-trace FILE]
//	         [-o DIR] [-id LIST] [-queries N] [-seed S] [-scale K]
//	         [-scenario FILE] [-record FILE] [experiment ...]
//
// With no arguments every experiment runs in DESIGN.md order. Run
// `facilsim -list` for the experiment identifiers (rendered from the
// same registry the facild daemon's GET /experiments serves). -id
// accepts a comma-separated identifier list and merges with positional
// arguments.
//
// The CLI is a thin shell over the internal/run engine: flags assemble
// a run.Scenario, the engine executes it, and the same scenario (as
// JSON) can be replayed here with -scenario FILE or POSTed unchanged to
// a facild daemon. -record FILE writes the effective scenario before
// running, so any invocation can be captured for replay.
//
// Output selection:
//
//   - -format table (default) streams aligned-text tables in
//     command-line order, byte-identical at any parallelism.
//   - -format csv streams each table as CSV preceded by a `# title` line.
//   - -format json emits one Report document at the end: a run manifest
//     (git revision, seed, environment, wall time) plus every
//     experiment's tables as structured data. See EXPERIMENTS.md
//     "Machine-readable output" for the schema.
//   - -o DIR additionally writes per-experiment files (<id>.txt/.csv/
//     .json according to -format) plus manifest.json into DIR.
//   - -trace FILE records a Chrome trace-event timeline of the
//     trace-aware experiments (serving2 lane occupancy, queue depth,
//     admissions) — load it at https://ui.perfetto.dev. -tracebuf bounds
//     the in-memory event ring.
//
// serving2 (the event-driven cooperative serving extension) accepts
// -rates, -replicas and -modes as comma-separated sweep lists plus
// -queuecap and -slo for the admission bound and TTLT goodput deadline.
//
// resilience (the fault-injection extension) additionally accepts
// -faults (comma-separated lane MTBFs in seconds — the fault-rate
// axis), -faultseed (the fault-scenario seed) and -policy
// (comma-separated degradation policies: none, soc-fallback, failover);
// -modes, -queuecap and -slo apply as for serving2.
//
// cluster (the fleet-scale serving extension; `facilsim -cluster` is
// shorthand for the identifier) accepts -strategy (comma-separated
// balancing strategies: round-robin, least-loaded, latency-weighted,
// slo-tiered), -fleet (a platform[/macN]:count comma list, e.g.
// "jetson:26,ideapad/mac8:26"), -devices (rescale the fleet preserving
// its mix), -rate (cluster-wide q/s), -sync (telemetry-barrier
// interval in virtual seconds), -steal (pair every strategy row with a
// cross-device migration "+steal" row), -stealthreshold (the
// in-system depth that triggers stealing from a healthy device;
// 0 = breaker-driven evacuation only) and -stealscore (steal-destination
// scoring: depth picks the least-loaded device, latency minimizes the
// TTFT-EWMA expected-wait proxy); -queries, -seed, -queuecap,
// -slo, -faultseed, a single -policy and a single -faults MTBF apply
// per device.
//
// maptune (the mapping auto-tuner extension; `facilsim -tune` is
// shorthand for the identifier) searches generalized page-offset
// permutation+XOR PA-to-DA mappings against per-workload traces and
// re-validates the Pareto front on the full scheduler. -tunebudget
// bounds the candidates scored per (platform, workload) cell and
// -tuneseed picks the mutation stream.
//
// -par N bounds the worker pool: independent experiment identifiers run
// concurrently, and each ported experiment additionally fans its sweep
// points out over up to N workers (0, the default, selects GOMAXPROCS;
// 1 forces fully serial runs). -v reports per-experiment sweep progress
// on stderr. SIGINT/SIGTERM cancel all in-flight experiments promptly.
//
// Profiling: -cpuprofile/-memprofile write pprof profiles; -pprof ADDR
// serves net/http/pprof on ADDR (e.g. localhost:6060) for live
// inspection of long sweeps.
//
// -bench runs the DRAM scheduler perf baseline (micro-benchmarks plus
// fig6/tab1 wall times) and prints BENCH_dram.json to stdout;
// -benchserve, -benchcluster and -benchtune do the same for the serving
// loop (BENCH_serve.json), the cluster barrier/steal path
// (BENCH_cluster.json) and the mapping auto-tuner estimator
// (BENCH_tune.json); see scripts/bench.sh. -version prints the
// module version and build info.
//
// A failing experiment does not abort the run: remaining identifiers
// still execute, the failures are summarized on stderr at the end
// (and in the JSON report's manifest), and the exit status is non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"

	"facil/internal/dram"
	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/obs"
	"facil/internal/run"
)

func main() {
	os.Exit(mainErr())
}

// mainErr is main with an exit code, so deferred profile/trace writers
// run before the process exits.
func mainErr() int {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	version := flag.Bool("version", false, "print the module version and build info, then exit")
	format := flag.String("format", "table", "output format: table, csv or json")
	csvOut := flag.Bool("csv", false, "deprecated alias for -format csv")
	outDir := flag.String("o", "", "write per-experiment result files plus manifest.json into this directory")
	idList := flag.String("id", "", "comma-separated experiment identifiers (merged with positional arguments)")
	scenarioFile := flag.String("scenario", "", "replay a recorded scenario file (explicit flags override its fields)")
	recordFile := flag.String("record", "", "record the effective scenario as JSON into this file before running")
	traceFile := flag.String("trace", "", "write a Chrome trace-event timeline of trace-aware experiments to this file")
	traceBuf := flag.Int("tracebuf", obs.DefaultCapacity, "trace ring-buffer capacity in events (oldest evicted on overflow)")
	par := flag.Int("par", 0, "max concurrent sweep workers (0 = GOMAXPROCS, 1 = serial)")
	verbose := flag.Bool("v", false, "report sweep progress on stderr")
	queries := flag.Int("queries", 0, "dataset experiments: queries per dataset (0 = default)")
	seed := flag.Int64("seed", 0, "dataset experiments: sampling seed (0 = default)")
	scale := flag.Int64("scale", 0, "tab1: memory down-scale factor (0 = default 8, 1 = paper-size)")
	rates := flag.String("rates", "", "serving2: comma-separated arrival rates in q/s (empty = default)")
	replicas := flag.String("replicas", "", "serving2: comma-separated replica counts (empty = default)")
	modes := flag.String("modes", "", "serving2: comma-separated modes (serial, cooperative, relayout-hybrid)")
	queueCap := flag.Int("queuecap", -1, "serving2/resilience: admission queue capacity (0 = unbounded, -1 = default)")
	slo := flag.Float64("slo", -1, "serving2/resilience: TTLT goodput deadline in seconds (0 = none, -1 = default)")
	faults := flag.String("faults", "", "resilience: comma-separated lane MTBFs in seconds (empty = default)")
	faultSeed := flag.Int64("faultseed", 0, "resilience: fault-scenario seed (0 = default)")
	policy := flag.String("policy", "", "resilience: comma-separated degradation policies (none, soc-fallback, failover)")
	clusterRun := flag.Bool("cluster", false, "shorthand: run the cluster experiment (equivalent to the 'cluster' identifier)")
	strategy := flag.String("strategy", "", "cluster: comma-separated balancing strategies (round-robin, least-loaded, latency-weighted, slo-tiered; empty = all)")
	fleet := flag.String("fleet", "", "cluster: device-class roster as platform[/macN]:count comma list (empty = default)")
	devices := flag.Int("devices", 0, "cluster: rescale the fleet to this many devices, preserving the class mix (0 = keep roster counts)")
	rate := flag.Float64("rate", 0, "cluster: cluster-wide arrival rate in q/s (0 = default)")
	sync_ := flag.Float64("sync", 0, "cluster: telemetry-barrier interval in virtual seconds (0 = default)")
	steal := flag.Bool("steal", true, "cluster: add cross-device migration (+steal) rows to the strategy sweep")
	stealThreshold := flag.Int("stealthreshold", -1, "cluster: in-system depth that triggers stealing from a healthy device (0 = breaker-driven only, -1 = default)")
	stealScore := flag.String("stealscore", "", "cluster: steal-destination scoring, depth or latency (empty = default)")
	tuneRun := flag.Bool("tune", false, "shorthand: run the maptune experiment (equivalent to the 'maptune' identifier)")
	tuneBudget := flag.Int("tunebudget", 0, "maptune: candidate budget per (platform, workload) cell (0 = default)")
	tuneSeed := flag.Int64("tuneseed", 0, "maptune: mutation-stream seed (0 = default)")
	bench := flag.Bool("bench", false, "run the DRAM scheduler perf baseline and print BENCH_dram.json to stdout")
	benchServe := flag.Bool("benchserve", false, "run the serving-loop perf baseline and print BENCH_serve.json to stdout")
	benchCluster := flag.Bool("benchcluster", false, "run the cluster barrier/steal perf baseline and print BENCH_cluster.json to stdout")
	benchTune := flag.Bool("benchtune", false, "run the mapping auto-tuner perf baseline and print BENCH_tune.json to stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: facilsim [flags] [experiment ...]\n\nexperiments: %s\n\n",
			strings.Join(exp.AllIDs, " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *version {
		fmt.Println(obs.CurrentBuild())
		return 0
	}
	if *list {
		for _, info := range exp.Catalog() {
			fmt.Printf("%-10s  %s\n", info.ID, info.Title)
		}
		return 0
	}
	if *csvOut {
		*format = "csv"
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "facilsim: unknown -format %q (want table, csv or json)\n", *format)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "facilsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "facilsim: -memprofile: %v\n", err)
			}
		}()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "facilsim: -pprof: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *bench {
		return runBench(ctx)
	}
	if *benchServe {
		return runServeBench()
	}
	if *benchCluster {
		return runClusterBench()
	}
	if *benchTune {
		return runTuneBench()
	}

	// Assemble the scenario: a replayed file forms the base, explicit
	// flags override its fields, and positional/-id identifiers replace
	// its experiment list when given.
	sc := run.DefaultScenario()
	if *scenarioFile != "" {
		var err error
		if sc, err = run.Load(*scenarioFile); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -scenario: %v\n", err)
			return 1
		}
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["queries"] {
		sc.Queries = *queries
	}
	if set["seed"] {
		sc.Seed = *seed
	}
	if set["scale"] {
		sc.Scale = *scale
	}
	if set["rates"] {
		sc.Rates = *rates
	}
	if set["replicas"] {
		sc.Replicas = *replicas
	}
	if set["modes"] {
		sc.Modes = *modes
	}
	if set["queuecap"] {
		sc.QueueCap = *queueCap
	}
	if set["slo"] {
		sc.SLO = *slo
	}
	if set["faults"] {
		sc.Faults = *faults
	}
	if set["faultseed"] {
		sc.FaultSeed = *faultSeed
	}
	if set["policy"] {
		sc.Policy = *policy
	}
	if set["strategy"] {
		sc.Strategy = *strategy
	}
	if set["fleet"] {
		sc.Fleet = *fleet
	}
	if set["devices"] {
		sc.Devices = *devices
	}
	if set["rate"] {
		sc.Rate = *rate
	}
	if set["sync"] {
		sc.Sync = *sync_
	}
	if set["steal"] {
		sc.Steal = 0
		if *steal {
			sc.Steal = 1
		}
	}
	if set["stealthreshold"] {
		sc.StealThreshold = *stealThreshold
	}
	if set["stealscore"] {
		sc.StealScore = *stealScore
	}
	if set["tunebudget"] {
		sc.TuneBudget = *tuneBudget
	}
	if set["tuneseed"] {
		sc.TuneSeed = *tuneSeed
	}
	ids := flag.Args()
	for _, id := range strings.Split(*idList, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if *clusterRun {
		ids = append(ids, "cluster")
	}
	if *tuneRun {
		ids = append(ids, "maptune")
	}
	if len(ids) > 0 {
		sc.Experiments = ids
	}
	if *recordFile != "" {
		if err := sc.Save(*recordFile); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -record: %v\n", err)
			return 1
		}
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.New(*traceBuf)
	}
	opts := run.Options{
		Config:      engine.DefaultConfig(),
		Tool:        "facilsim",
		Parallelism: *par,
		Tracer:      tracer,
	}
	if *verbose {
		var mu sync.Mutex
		opts.Progress = func(experiment string, done, total int) {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "facilsim: %s: %d/%d\n", experiment, done, total)
			mu.Unlock()
		}
	}
	eng := run.New(opts)

	report, err := eng.Execute(ctx, sc, run.ExecOpts{
		OutDir: *outDir,
		Format: *format,
		Sink: func(res exp.Result) error {
			if res.Error != "" {
				fmt.Fprintf(os.Stderr, "facilsim: %s: %s\n", res.ID, res.Error)
				return nil
			}
			return emitStdout(*format, res)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "facilsim: %v\n", err)
		return 1
	}

	if *format == "json" {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: %v\n", err)
			return 1
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "facilsim: trace: %s (%d events, %d dropped)\n",
			*traceFile, tracer.Len(), tracer.Dropped())
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "facilsim: DRAM totals: %d stream replays, %d requests, %d cycles\n",
			dram.Global.Streams(), dram.Global.Requests(), dram.Global.Cycles())
	}
	if failed := report.Manifest.Failed; len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "facilsim: %d of %d experiments failed: %s\n",
			len(failed), len(report.Manifest.Experiments), strings.Join(failed, " "))
		return 1
	}
	return 0
}

// emitStdout streams one successful result to stdout in the selected
// format. JSON results are not streamed — they are bundled into the
// final Report document instead.
func emitStdout(format string, res exp.Result) error {
	switch format {
	case "table":
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("[%s finished in %.1fs]\n\n", res.ID, res.ElapsedSeconds)
	case "csv":
		return res.WriteCSV(os.Stdout)
	}
	return nil
}
