// Command facilsim regenerates the paper's tables and figures from the
// simulation stack.
//
// Usage:
//
//	facilsim [-list] [-par N] [-v] [-queries N] [-seed S] [-scale K] [experiment ...]
//
// With no arguments every experiment runs in DESIGN.md order. Experiment
// identifiers: fig2a fig2b fig3 fig6 tab1 tab2 tab3 fig13 fig14 fig15
// fig16 maxmap ablations cosched quant pimstyle energy serving serving2.
//
// serving2 (the event-driven cooperative serving extension) accepts
// -rates, -replicas and -modes as comma-separated sweep lists plus
// -queuecap and -slo for the admission bound and TTLT goodput deadline.
//
// -par N bounds the worker pool: independent experiment identifiers run
// concurrently, and each ported experiment additionally fans its sweep
// points out over up to N workers (0, the default, selects GOMAXPROCS;
// 1 forces fully serial runs). Output is streamed in command-line order
// and is byte-identical at any parallelism. -v reports per-experiment
// sweep progress on stderr. SIGINT/SIGTERM cancel all in-flight
// experiments promptly.
//
// A failing experiment no longer aborts the run: remaining identifiers
// still execute, the failures are summarized on stderr at the end, and
// the exit status is non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"facil/internal/dram"
	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/parallel"
	"facil/internal/serve"
	"facil/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	par := flag.Int("par", 0, "max concurrent sweep workers (0 = GOMAXPROCS, 1 = serial)")
	verbose := flag.Bool("v", false, "report sweep progress on stderr")
	queries := flag.Int("queries", 0, "dataset experiments: queries per dataset (0 = default)")
	seed := flag.Int64("seed", 0, "dataset experiments: sampling seed (0 = default)")
	scale := flag.Int64("scale", 0, "tab1: memory down-scale factor (0 = default 8, 1 = paper-size)")
	rates := flag.String("rates", "", "serving2: comma-separated arrival rates in q/s (empty = default)")
	replicas := flag.String("replicas", "", "serving2: comma-separated replica counts (empty = default)")
	modes := flag.String("modes", "", "serving2: comma-separated modes (serial, cooperative, relayout-hybrid)")
	queueCap := flag.Int("queuecap", -1, "serving2: admission queue capacity (0 = unbounded, -1 = default)")
	slo := flag.Float64("slo", -1, "serving2: TTLT goodput deadline in seconds (0 = none, -1 = default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: facilsim [flags] [experiment ...]\n\nexperiments: %s\n\n",
			strings.Join(exp.AllIDs, " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range exp.AllIDs {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.AllIDs
	}
	lab := exp.NewLab(engine.DefaultConfig())
	lab.SetParallelism(*par)
	ov := overrides{
		queries: *queries, seed: *seed, scale: *scale,
		rates: *rates, replicas: *replicas, modes: *modes,
		queueCap: *queueCap, slo: *slo,
	}
	if *verbose {
		var mu sync.Mutex
		lab.SetProgress(func(experiment string, done, total int) {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "facilsim: %s: %d/%d\n", experiment, done, total)
			mu.Unlock()
		})
	}

	// Experiment identifiers run concurrently on the same worker bound as
	// the per-experiment sweeps; results stream in command-line order. A
	// point never returns an error to the sweep — failures are captured
	// per identifier so one bad experiment cannot cancel the others.
	type outcome struct {
		tabs    []exp.Table
		err     error
		elapsed time.Duration
	}
	results := make([]outcome, len(ids))
	ready := make([]chan struct{}, len(ids))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	idxs := make([]int, len(ids))
	for i := range idxs {
		idxs[i] = i
	}
	go func() {
		finished := make([]bool, len(ids))
		_, _ = parallel.Sweep(ctx, idxs, func(ctx context.Context, i int) (struct{}, error) {
			start := time.Now()
			tabs, err := run(ctx, lab, ids[i], ov)
			results[i] = outcome{tabs: tabs, err: err, elapsed: time.Since(start)}
			finished[i] = true
			close(ready[i])
			return struct{}{}, nil
		}, parallel.Workers(*par))
		// On cancellation some identifiers are never dispatched; release
		// the printer with the context's error so it cannot block. Sweep
		// has returned, so no worker still touches finished/results.
		for i := range ids {
			if !finished[i] {
				results[i] = outcome{err: ctx.Err()}
				close(ready[i])
			}
		}
	}()

	var failed []string
	for i, id := range ids {
		<-ready[i]
		res := results[i]
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: %s: %v\n", id, res.err)
			failed = append(failed, id)
			continue
		}
		for _, t := range res.tabs {
			if *csvOut {
				fmt.Printf("# %s\n", t.Title)
				if err := t.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "facilsim: %s: %v\n", id, err)
					failed = append(failed, id)
					break
				}
				fmt.Println()
			} else {
				fmt.Println(t.String())
			}
		}
		if !*csvOut && res.err == nil {
			fmt.Printf("[%s finished in %.1fs]\n\n", id, res.elapsed.Seconds())
		}
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "facilsim: DRAM totals: %d stream replays, %d requests, %d cycles\n",
			dram.Global.Streams(), dram.Global.Requests(), dram.Global.Cycles())
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "facilsim: %d of %d experiments failed: %s\n",
			len(failed), len(ids), strings.Join(failed, " "))
		os.Exit(1)
	}
}

// overrides carries the command-line tweaks for the parameterizable
// experiments.
type overrides struct {
	queries     int
	seed, scale int64
	rates       string
	replicas    string
	modes       string
	queueCap    int
	slo         float64
}

// run dispatches one experiment, honoring the override flags for the
// parameterizable ones.
func run(ctx context.Context, lab *exp.Lab, id string, ov overrides) ([]exp.Table, error) {
	queries, seed, scale := ov.queries, ov.seed, ov.scale
	switch id {
	case "tab1":
		cfg := exp.DefaultTable1Config()
		if scale > 0 {
			cfg.Scale = scale
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		t, err := lab.Table1(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "serving2":
		cfg := exp.DefaultServing2Config()
		if err := applyServing2Overrides(&cfg, ov); err != nil {
			return nil, err
		}
		t, err := lab.Serving2(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "fig15", "fig16":
		if queries <= 0 && seed == 0 {
			return lab.Run(ctx, id)
		}
		cfg := exp.DefaultDatasetConfig()
		if queries > 0 {
			cfg.Queries = queries
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		var out []exp.Table
		for _, spec := range []workload.Spec{workload.AlpacaSpec(), workload.AutocompleteSpec()} {
			var (
				t   exp.Table
				err error
			)
			if id == "fig15" {
				t, err = lab.Fig15(ctx, spec, cfg)
			} else {
				t, err = lab.Fig16(ctx, spec, cfg)
			}
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	default:
		return lab.Run(ctx, id)
	}
}

// applyServing2Overrides folds the serving2 flags into the config.
func applyServing2Overrides(cfg *exp.Serving2Config, ov overrides) error {
	if ov.queries > 0 {
		cfg.Queries = ov.queries
	}
	if ov.seed != 0 {
		cfg.Seed = ov.seed
	}
	if ov.queueCap >= 0 {
		cfg.QueueCap = ov.queueCap
	}
	if ov.slo >= 0 {
		cfg.DeadlineTTLT = ov.slo
	}
	if ov.rates != "" {
		cfg.Rates = cfg.Rates[:0]
		for _, f := range strings.Split(ov.rates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				return fmt.Errorf("bad -rates entry %q", f)
			}
			cfg.Rates = append(cfg.Rates, r)
		}
	}
	if ov.replicas != "" {
		cfg.Replicas = cfg.Replicas[:0]
		for _, f := range strings.Split(ov.replicas, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -replicas entry %q", f)
			}
			cfg.Replicas = append(cfg.Replicas, n)
		}
	}
	if ov.modes != "" {
		cfg.Modes = cfg.Modes[:0]
		for _, f := range strings.Split(ov.modes, ",") {
			m, err := serve.ParseMode(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Modes = append(cfg.Modes, m)
		}
	}
	return nil
}
