// Command facilsim regenerates the paper's tables and figures from the
// simulation stack.
//
// Usage:
//
//	facilsim [-list] [-queries N] [-seed S] [-scale K] [experiment ...]
//
// With no arguments every experiment runs in DESIGN.md order. Experiment
// identifiers: fig2a fig2b fig3 fig6 tab1 tab2 tab3 fig13 fig14 fig15
// fig16 maxmap ablations cosched quant pimstyle energy serving.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned text tables")
	queries := flag.Int("queries", 0, "dataset experiments: queries per dataset (0 = default)")
	seed := flag.Int64("seed", 0, "dataset experiments: sampling seed (0 = default)")
	scale := flag.Int64("scale", 0, "tab1: memory down-scale factor (0 = default 8, 1 = paper-size)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: facilsim [flags] [experiment ...]\n\nexperiments: %s\n\n",
			strings.Join(exp.AllIDs, " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range exp.AllIDs {
			fmt.Println(id)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.AllIDs
	}
	lab := exp.NewLab(engine.DefaultConfig())
	for _, id := range ids {
		start := time.Now()
		tabs, err := run(lab, id, *queries, *seed, *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tabs {
			if *csvOut {
				fmt.Printf("# %s\n", t.Title)
				if err := t.WriteCSV(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "facilsim: %s: %v\n", id, err)
					os.Exit(1)
				}
				fmt.Println()
			} else {
				fmt.Println(t.String())
			}
		}
		if !*csvOut {
			fmt.Printf("[%s finished in %.1fs]\n\n", id, time.Since(start).Seconds())
		}
	}
}

// run dispatches one experiment, honoring the override flags for the
// parameterizable ones.
func run(lab *exp.Lab, id string, queries int, seed, scale int64) ([]exp.Table, error) {
	switch id {
	case "tab1":
		cfg := exp.DefaultTable1Config()
		if scale > 0 {
			cfg.Scale = scale
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		t, err := exp.Table1(cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "fig15", "fig16":
		if queries <= 0 && seed == 0 {
			return lab.Run(id)
		}
		cfg := exp.DefaultDatasetConfig()
		if queries > 0 {
			cfg.Queries = queries
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		var out []exp.Table
		for _, spec := range []workload.Spec{workload.AlpacaSpec(), workload.AutocompleteSpec()} {
			var (
				t   exp.Table
				err error
			)
			if id == "fig15" {
				t, err = lab.Fig15(spec, cfg)
			} else {
				t, err = lab.Fig16(spec, cfg)
			}
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	default:
		return lab.Run(id)
	}
}
