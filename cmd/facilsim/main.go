// Command facilsim regenerates the paper's tables and figures from the
// simulation stack.
//
// Usage:
//
//	facilsim [-list] [-par N] [-v] [-format table|csv|json] [-trace FILE]
//	         [-o DIR] [-id LIST] [-queries N] [-seed S] [-scale K] [experiment ...]
//
// With no arguments every experiment runs in DESIGN.md order. Experiment
// identifiers: fig2a fig2b fig3 fig6 tab1 tab2 tab3 fig13 fig14 fig15
// fig16 maxmap ablations cosched quant pimstyle energy serving serving2
// resilience. -id accepts the same identifiers as a comma-separated list
// and merges with positional arguments.
//
// Output selection:
//
//   - -format table (default) streams aligned-text tables in
//     command-line order, byte-identical at any parallelism.
//   - -format csv streams each table as CSV preceded by a `# title` line.
//   - -format json emits one Report document at the end: a run manifest
//     (git revision, seed, environment, wall time) plus every
//     experiment's tables as structured data. See EXPERIMENTS.md
//     "Machine-readable output" for the schema.
//   - -o DIR additionally writes per-experiment files (<id>.txt/.csv/
//     .json according to -format) plus manifest.json into DIR.
//   - -trace FILE records a Chrome trace-event timeline of the
//     trace-aware experiments (serving2 lane occupancy, queue depth,
//     admissions) — load it at https://ui.perfetto.dev. -tracebuf bounds
//     the in-memory event ring.
//
// serving2 (the event-driven cooperative serving extension) accepts
// -rates, -replicas and -modes as comma-separated sweep lists plus
// -queuecap and -slo for the admission bound and TTLT goodput deadline.
//
// resilience (the fault-injection extension) additionally accepts
// -faults (comma-separated lane MTBFs in seconds — the fault-rate
// axis), -faultseed (the fault-scenario seed) and -policy
// (comma-separated degradation policies: none, soc-fallback, failover);
// -modes, -queuecap and -slo apply as for serving2.
//
// -par N bounds the worker pool: independent experiment identifiers run
// concurrently, and each ported experiment additionally fans its sweep
// points out over up to N workers (0, the default, selects GOMAXPROCS;
// 1 forces fully serial runs). -v reports per-experiment sweep progress
// on stderr. SIGINT/SIGTERM cancel all in-flight experiments promptly.
//
// Profiling: -cpuprofile/-memprofile write pprof profiles; -pprof ADDR
// serves net/http/pprof on ADDR (e.g. localhost:6060) for live
// inspection of long sweeps.
//
// -bench runs the DRAM scheduler perf baseline (micro-benchmarks plus
// fig6/tab1 wall times) and prints BENCH_dram.json to stdout; see
// scripts/bench.sh.
//
// A failing experiment does not abort the run: remaining identifiers
// still execute, the failures are summarized on stderr at the end
// (and in the JSON report's manifest), and the exit status is non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"facil/internal/dram"
	"facil/internal/engine"
	"facil/internal/exp"
	"facil/internal/obs"
	"facil/internal/parallel"
	"facil/internal/serve"
	"facil/internal/workload"
)

func main() {
	os.Exit(mainErr())
}

// mainErr is main with an exit code, so deferred profile/trace writers
// run before the process exits.
func mainErr() int {
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	format := flag.String("format", "table", "output format: table, csv or json")
	csvOut := flag.Bool("csv", false, "deprecated alias for -format csv")
	outDir := flag.String("o", "", "write per-experiment result files plus manifest.json into this directory")
	idList := flag.String("id", "", "comma-separated experiment identifiers (merged with positional arguments)")
	traceFile := flag.String("trace", "", "write a Chrome trace-event timeline of trace-aware experiments to this file")
	traceBuf := flag.Int("tracebuf", obs.DefaultCapacity, "trace ring-buffer capacity in events (oldest evicted on overflow)")
	par := flag.Int("par", 0, "max concurrent sweep workers (0 = GOMAXPROCS, 1 = serial)")
	verbose := flag.Bool("v", false, "report sweep progress on stderr")
	queries := flag.Int("queries", 0, "dataset experiments: queries per dataset (0 = default)")
	seed := flag.Int64("seed", 0, "dataset experiments: sampling seed (0 = default)")
	scale := flag.Int64("scale", 0, "tab1: memory down-scale factor (0 = default 8, 1 = paper-size)")
	rates := flag.String("rates", "", "serving2: comma-separated arrival rates in q/s (empty = default)")
	replicas := flag.String("replicas", "", "serving2: comma-separated replica counts (empty = default)")
	modes := flag.String("modes", "", "serving2: comma-separated modes (serial, cooperative, relayout-hybrid)")
	queueCap := flag.Int("queuecap", -1, "serving2/resilience: admission queue capacity (0 = unbounded, -1 = default)")
	slo := flag.Float64("slo", -1, "serving2/resilience: TTLT goodput deadline in seconds (0 = none, -1 = default)")
	faults := flag.String("faults", "", "resilience: comma-separated lane MTBFs in seconds (empty = default)")
	faultSeed := flag.Int64("faultseed", 0, "resilience: fault-scenario seed (0 = default)")
	policy := flag.String("policy", "", "resilience: comma-separated degradation policies (none, soc-fallback, failover)")
	bench := flag.Bool("bench", false, "run the DRAM scheduler perf baseline and print BENCH_dram.json to stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: facilsim [flags] [experiment ...]\n\nexperiments: %s\n\n",
			strings.Join(exp.AllIDs, " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, id := range exp.AllIDs {
			fmt.Println(id)
		}
		return 0
	}
	if *csvOut {
		*format = "csv"
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "facilsim: unknown -format %q (want table, csv or json)\n", *format)
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "facilsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "facilsim: -memprofile: %v\n", err)
			}
		}()
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "facilsim: -pprof: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *bench {
		return runBench(ctx)
	}

	ids := flag.Args()
	for _, id := range strings.Split(*idList, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		ids = exp.AllIDs
	}

	manifest := obs.NewManifest("facilsim", os.Args[1:])
	manifest.Seed = *seed
	manifest.Parallelism = *par
	manifest.Experiments = ids

	lab := exp.NewLab(engine.DefaultConfig())
	lab.SetParallelism(*par)
	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.New(*traceBuf)
		lab.SetTracer(tracer)
	}
	ov := overrides{
		queries: *queries, seed: *seed, scale: *scale,
		rates: *rates, replicas: *replicas, modes: *modes,
		queueCap: *queueCap, slo: *slo,
		faults: *faults, faultSeed: *faultSeed, policy: *policy,
	}
	if *verbose {
		var mu sync.Mutex
		lab.SetProgress(func(experiment string, done, total int) {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "facilsim: %s: %d/%d\n", experiment, done, total)
			mu.Unlock()
		})
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -o: %v\n", err)
			return 1
		}
	}

	results := runAll(ctx, lab, ids, ov, *par)

	// Consume results in command-line order: stream (table/csv), collect
	// for the report (json), and mirror into -o files.
	var report exp.Report
	var failed []string
	for i, id := range ids {
		<-results[i].ready
		res := results[i].res
		if res.Error != "" {
			fmt.Fprintf(os.Stderr, "facilsim: %s: %s\n", id, res.Error)
			failed = append(failed, id)
		}
		report.Results = append(report.Results, res)
		if res.Error == "" {
			if err := emitStdout(*format, res); err != nil {
				fmt.Fprintf(os.Stderr, "facilsim: %s: %v\n", id, err)
				failed = append(failed, id)
				continue
			}
		}
		if *outDir != "" && res.Error == "" {
			if err := writeResultFile(*outDir, *format, res); err != nil {
				fmt.Fprintf(os.Stderr, "facilsim: %s: %v\n", id, err)
				failed = append(failed, id)
			}
		}
	}

	manifest.Failed = failed
	manifest.WallSeconds = time.Since(manifest.Start).Seconds()
	report.Manifest = manifest
	if *format == "json" {
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: %v\n", err)
			return 1
		}
	}
	if *outDir != "" {
		if err := writeManifest(*outDir, manifest); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: manifest: %v\n", err)
			return 1
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*traceFile); err != nil {
			fmt.Fprintf(os.Stderr, "facilsim: -trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "facilsim: trace: %s (%d events, %d dropped)\n",
			*traceFile, tracer.Len(), tracer.Dropped())
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "facilsim: DRAM totals: %d stream replays, %d requests, %d cycles\n",
			dram.Global.Streams(), dram.Global.Requests(), dram.Global.Cycles())
	}
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "facilsim: %d of %d experiments failed: %s\n",
			len(failed), len(ids), strings.Join(failed, " "))
		return 1
	}
	return 0
}

// pending is one experiment's future result: res is valid once ready is
// closed.
type pending struct {
	ready chan struct{}
	res   exp.Result
}

// runAll launches every identifier on a bounded worker pool and returns
// the per-identifier futures. A failing experiment is captured in its
// Result rather than cancelling the sweep, so one bad experiment cannot
// take the others down.
func runAll(ctx context.Context, lab *exp.Lab, ids []string, ov overrides, par int) []pending {
	results := make([]pending, len(ids))
	for i := range results {
		results[i].ready = make(chan struct{})
	}
	idxs := make([]int, len(ids))
	for i := range idxs {
		idxs[i] = i
	}
	go func() {
		finished := make([]bool, len(ids))
		_, _ = parallel.Sweep(ctx, idxs, func(ctx context.Context, i int) (struct{}, error) {
			start := time.Now()
			tabs, err := run(ctx, lab, ids[i], ov)
			res := exp.Result{ID: ids[i], Tables: tabs, ElapsedSeconds: time.Since(start).Seconds()}
			if err != nil {
				res.Error = err.Error()
				res.Tables = nil
			}
			results[i].res = res
			finished[i] = true
			close(results[i].ready)
			return struct{}{}, nil
		}, parallel.Workers(par))
		// On cancellation some identifiers are never dispatched; release
		// the printer with the context's error so it cannot block. Sweep
		// has returned, so no worker still touches finished/results.
		for i := range ids {
			if !finished[i] {
				results[i].res = exp.Result{ID: ids[i], Error: ctx.Err().Error()}
				close(results[i].ready)
			}
		}
	}()
	return results
}

// emitStdout streams one successful result to stdout in the selected
// format. JSON results are not streamed — they are bundled into the
// final Report document instead.
func emitStdout(format string, res exp.Result) error {
	switch format {
	case "table":
		if err := res.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("[%s finished in %.1fs]\n\n", res.ID, res.ElapsedSeconds)
	case "csv":
		return res.WriteCSV(os.Stdout)
	}
	return nil
}

// writeResultFile mirrors one result into -o DIR as <id>.<ext>.
func writeResultFile(dir, format string, res exp.Result) error {
	ext := map[string]string{"table": "txt", "csv": "csv", "json": "json"}[format]
	f, err := os.Create(filepath.Join(dir, res.ID+"."+ext))
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "table":
		err = res.WriteText(f)
	case "csv":
		err = res.WriteCSV(f)
	case "json":
		err = res.WriteJSON(f)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// writeManifest writes the run manifest as DIR/manifest.json.
func writeManifest(dir string, m obs.Manifest) error {
	f, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// overrides carries the command-line tweaks for the parameterizable
// experiments.
type overrides struct {
	queries     int
	seed, scale int64
	rates       string
	replicas    string
	modes       string
	queueCap    int
	slo         float64
	faults      string
	faultSeed   int64
	policy      string
}

// run dispatches one experiment, honoring the override flags for the
// parameterizable ones.
func run(ctx context.Context, lab *exp.Lab, id string, ov overrides) ([]exp.Table, error) {
	queries, seed, scale := ov.queries, ov.seed, ov.scale
	switch id {
	case "tab1":
		cfg := exp.DefaultTable1Config()
		if scale > 0 {
			cfg.Scale = scale
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		t, err := lab.Table1(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "serving2":
		cfg := exp.DefaultServing2Config()
		if err := applyServing2Overrides(&cfg, ov); err != nil {
			return nil, err
		}
		t, err := lab.Serving2(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "resilience":
		cfg := exp.DefaultResilienceConfig()
		if err := applyResilienceOverrides(&cfg, ov); err != nil {
			return nil, err
		}
		t, err := lab.Resilience(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return []exp.Table{t}, nil
	case "fig15", "fig16":
		if queries <= 0 && seed == 0 {
			return lab.Run(ctx, id)
		}
		cfg := exp.DefaultDatasetConfig()
		if queries > 0 {
			cfg.Queries = queries
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		var out []exp.Table
		for _, spec := range []workload.Spec{workload.AlpacaSpec(), workload.AutocompleteSpec()} {
			var (
				t   exp.Table
				err error
			)
			if id == "fig15" {
				t, err = lab.Fig15(ctx, spec, cfg)
			} else {
				t, err = lab.Fig16(ctx, spec, cfg)
			}
			if err != nil {
				return nil, err
			}
			out = append(out, t)
		}
		return out, nil
	default:
		return lab.Run(ctx, id)
	}
}

// applyServing2Overrides folds the serving2 flags into the config.
func applyServing2Overrides(cfg *exp.Serving2Config, ov overrides) error {
	if ov.queries > 0 {
		cfg.Queries = ov.queries
	}
	if ov.seed != 0 {
		cfg.Seed = ov.seed
	}
	if ov.queueCap >= 0 {
		cfg.QueueCap = ov.queueCap
	}
	if ov.slo >= 0 {
		cfg.DeadlineTTLT = ov.slo
	}
	if ov.rates != "" {
		cfg.Rates = cfg.Rates[:0]
		for _, f := range strings.Split(ov.rates, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || r <= 0 {
				return fmt.Errorf("bad -rates entry %q", f)
			}
			cfg.Rates = append(cfg.Rates, r)
		}
	}
	if ov.replicas != "" {
		cfg.Replicas = cfg.Replicas[:0]
		for _, f := range strings.Split(ov.replicas, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n <= 0 {
				return fmt.Errorf("bad -replicas entry %q", f)
			}
			cfg.Replicas = append(cfg.Replicas, n)
		}
	}
	if ov.modes != "" {
		cfg.Modes = cfg.Modes[:0]
		for _, f := range strings.Split(ov.modes, ",") {
			m, err := serve.ParseMode(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Modes = append(cfg.Modes, m)
		}
	}
	return nil
}

// applyResilienceOverrides folds the fault-sweep flags into the config.
func applyResilienceOverrides(cfg *exp.ResilienceConfig, ov overrides) error {
	if ov.queries > 0 {
		cfg.Queries = ov.queries
	}
	if ov.seed != 0 {
		cfg.Seed = ov.seed
	}
	if ov.faultSeed != 0 {
		cfg.FaultSeed = ov.faultSeed
	}
	if ov.queueCap >= 0 {
		cfg.QueueCap = ov.queueCap
	}
	if ov.slo >= 0 {
		cfg.DeadlineTTLT = ov.slo
	}
	if ov.faults != "" {
		cfg.LaneMTBFs = cfg.LaneMTBFs[:0]
		for _, f := range strings.Split(ov.faults, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("bad -faults entry %q (want a positive MTBF in seconds)", f)
			}
			cfg.LaneMTBFs = append(cfg.LaneMTBFs, v)
		}
	}
	if ov.policy != "" {
		cfg.Policies = cfg.Policies[:0]
		for _, f := range strings.Split(ov.policy, ",") {
			p, err := serve.ParsePolicy(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Policies = append(cfg.Policies, p)
		}
	}
	if ov.modes != "" {
		cfg.Modes = cfg.Modes[:0]
		for _, f := range strings.Split(ov.modes, ",") {
			m, err := serve.ParseMode(strings.TrimSpace(f))
			if err != nil {
				return err
			}
			cfg.Modes = append(cfg.Modes, m)
		}
	}
	return nil
}
