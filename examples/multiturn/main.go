// Multiturn: a multi-turn assistant session. Each turn appends the
// previous conversation to the context, so prefills grow while the
// re-layout cost of the hybrid baseline stays fixed per turn — FACIL's
// advantage is largest exactly on the short early turns that set the
// perceived responsiveness of a chat session.
//
// Run with: go run ./examples/multiturn
package main

import (
	"fmt"
	"log"

	"facil"
)

// turn is one user/assistant exchange (token counts).
type turn struct {
	user      int
	assistant int
}

func main() {
	sys, err := facil.NewSystem("NVIDIA Jetson AGX Orin 64GB", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s, model: %s\n\n", sys.PlatformName(), sys.ModelName())

	session := []turn{
		{user: 18, assistant: 46},
		{user: 9, assistant: 85},
		{user: 24, assistant: 60},
		{user: 12, assistant: 110},
		{user: 30, assistant: 72},
	}

	fmt.Printf("%-5s %-9s %-9s %12s %12s %9s\n",
		"turn", "context", "new toks", "hybrid TTFT", "FACIL TTFT", "speedup")
	context := 0
	var hybridTotal, facilTotal float64
	for i, tn := range session {
		// The new prefill covers the user's message plus whatever of
		// the conversation is not yet in the KV cache (here: all new
		// tokens — the cache persists across turns).
		prefill := tn.user
		if prefill < 1 {
			prefill = 1
		}
		// The hybrid baseline must re-layout weights again on every
		// turn's prefill; FACIL never does.
		hybridTTFT, err := sys.TTFT(facil.HybridStatic, prefill)
		if err != nil {
			log.Fatal(err)
		}
		facilTTFT, err := sys.TTFT(facil.FACIL, prefill)
		if err != nil {
			log.Fatal(err)
		}
		hybridTTLT, err := sys.TTLT(facil.HybridStatic, context+prefill, tn.assistant)
		if err != nil {
			log.Fatal(err)
		}
		facilTTLT, err := sys.TTLT(facil.FACIL, context+prefill, tn.assistant)
		if err != nil {
			log.Fatal(err)
		}
		hybridTotal += hybridTTLT
		facilTotal += facilTTLT
		fmt.Printf("%-5d %-9d %-9d %9.1f ms %9.1f ms %8.2fx\n",
			i+1, context, prefill, 1e3*hybridTTFT, 1e3*facilTTFT,
			facil.Speedup(hybridTTFT, facilTTFT))
		context += tn.user + tn.assistant
	}
	fmt.Printf("\nwhole session (all turns, prefill+decode): hybrid %.2f s, FACIL %.2f s (%.2fx)\n",
		hybridTotal, facilTotal, facil.Speedup(hybridTotal, facilTotal))
	fmt.Println("every turn pays the baseline's re-layout again; FACIL never does")
}
