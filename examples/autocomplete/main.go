// Autocomplete: the paper's code-completion scenario. Completions have
// long prompts (the surrounding code) and short outputs, so TTFT — and
// therefore the re-layout overhead FACIL removes — dominates the user
// experience. This example evaluates a RealHumanEval-style workload on
// the MacBook Pro.
//
// Run with: go run ./examples/autocomplete
package main

import (
	"fmt"
	"log"

	"facil"
	"facil/internal/stats"
	"facil/internal/workload"
)

func main() {
	sys, err := facil.NewSystem("Apple MacBook Pro", "")
	if err != nil {
		log.Fatal(err)
	}
	ds, err := workload.Generate(workload.AutocompleteSpec(), 60, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s, model: %s\n", sys.PlatformName(), sys.ModelName())
	fmt.Printf("workload: %s, %d completions (mean prompt %.0f tokens, mean output %.0f tokens)\n\n",
		ds.Name, len(ds.Queries), ds.MeanPrefill(), ds.MeanDecode())

	designs := []facil.Design{facil.SoCOnly, facil.HybridStatic, facil.HybridDynamic, facil.FACIL}
	ttftSp := map[facil.Design][]float64{}
	ttltSp := map[facil.Design][]float64{}
	for _, q := range ds.Queries {
		baseTTFT, err := sys.TTFT(facil.HybridStatic, q.Prefill)
		if err != nil {
			log.Fatal(err)
		}
		baseTTLT, err := sys.TTLT(facil.HybridStatic, q.Prefill, q.Decode)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range designs {
			ttft, err := sys.TTFT(d, q.Prefill)
			if err != nil {
				log.Fatal(err)
			}
			ttlt, err := sys.TTLT(d, q.Prefill, q.Decode)
			if err != nil {
				log.Fatal(err)
			}
			ttftSp[d] = append(ttftSp[d], facil.Speedup(baseTTFT, ttft))
			ttltSp[d] = append(ttltSp[d], facil.Speedup(baseTTLT, ttlt))
		}
	}

	fmt.Printf("%-20s %18s %18s\n", "design", "TTFT vs baseline", "TTLT vs baseline")
	for _, d := range designs {
		fmt.Printf("%-20s %17.2fx %17.2fx\n",
			d, stats.Geomean(ttftSp[d]), stats.Geomean(ttltSp[d]))
	}
	fmt.Println("\n(the paper reports FACIL at 2.63x TTFT on the code-autocompletion dataset)")
}
