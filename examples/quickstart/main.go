// Quickstart: allocate an LLM weight matrix with pimalloc and watch the
// same bytes resolve to PIM-friendly and conventional DRAM locations.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"facil"
)

func main() {
	// An arena wraps one platform's memory system: page table, TLB,
	// buddy allocator and the MapID-aware memory-controller frontend.
	arena, err := facil.NewArena("Apple iPhone 15 Pro")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frontend supports %d PA-to-DA mappings (1 conventional + PIM family)\n\n",
		arena.SupportedMappings())

	// pimalloc a 4096x4096 FP16 projection matrix. The mapping selector
	// picks the MapID from the matrix/memory/PIM configuration and the
	// OS records it in the huge-page PTEs.
	w, err := arena.Pimalloc(4096, 4096, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pimalloc(4096x4096 fp16):\n")
	fmt.Printf("  va            = %#x\n", w.VA)
	fmt.Printf("  bytes         = %d (%d huge pages)\n", w.Bytes, w.HugePages)
	fmt.Printf("  MapID         = %d (partitioned=%v x%d)\n", w.MapID, w.Partitioned, w.PartitionsPerRow)
	fmt.Printf("  page-offset mapping: %s\n\n", w.MappingLayout)

	// PIM view: an entire matrix row stays inside one bank so a single
	// processing unit computes its dot product without reduction.
	fmt.Println("PIM-optimized placement (per-element DRAM locations):")
	for _, e := range [][2]int{{0, 0}, {0, 1023}, {0, 2048}, {1, 0}, {2, 0}} {
		loc, err := arena.ElementLocation(w, e[0], e[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  W[%4d,%4d] -> %s\n", e[0], e[1], loc)
	}

	// Conventional view of the same first bytes: consecutive bursts
	// interleave across channels — what a GEMM kernel wants, and what
	// the PTE's MapID lets the SoC keep using via virtual addresses.
	fmt.Println("\nsame bytes under the conventional mapping (what the SoC frontend")
	fmt.Println("would use for a page without a PIM MapID):")
	for off := uint64(0); off < 4*32; off += 32 {
		loc, err := arena.ConventionalLocation(w.VA + off)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  va+%3d -> %s\n", off, loc)
	}

	fmt.Printf("\nTLB hit rate during this walkthrough: %.0f%%\n", 100*arena.TLBHitRate())
}
