// Mappingexplorer: enumerate FACIL's mapping family for any platform and
// show which MapID the selector picks for each weight matrix of a model.
//
// Run with: go run ./examples/mappingexplorer [platform-index]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"facil/internal/exp"
	"facil/internal/mapping"
	"facil/internal/soc"
	"facil/internal/vm"
)

func main() {
	platforms := soc.All()
	idx := 0
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 0 || v >= len(platforms) {
			log.Fatalf("usage: mappingexplorer [0-%d]", len(platforms)-1)
		}
		idx = v
	}
	p := platforms[idx]
	model := exp.PlatformModel(p)
	g := p.Spec.Geometry
	memCfg := mapping.MemoryConfig{Geometry: g, HugePageBytes: vm.HugePageBytes}
	chunk := mapping.AiMChunk(g)

	fmt.Printf("platform: %s\n", p.Name)
	fmt.Printf("memory:   %s (%d channels x %d ranks x %d banks = %d PUs)\n",
		p.Spec.Name, g.Channels, g.RanksPerChannel, g.BanksPerRank, g.TotalBanks())
	fmt.Printf("chunk:    %s (%d, %d) at FP16\n\n", chunk.Style, chunk.Rows, chunk.ColElems(2))

	table, err := mapping.NewTable(memCfg, chunk)
	if err != nil {
		log.Fatal(err)
	}
	min, max := table.Range()
	fmt.Printf("mapping family: MapID %d..%d (+conventional) -> %d mux inputs\n\n", min, max, table.Size())
	fmt.Println("page-offset bit layouts (MSB -> LSB):")
	fmt.Printf("  %-12s %s\n", "conventional", table.Conventional())
	for id := min; id <= max; id++ {
		fmt.Printf("  MapID %-6d %s\n", id, table.Lookup(id))
	}

	fmt.Printf("\nselector decisions for %s weight matrices:\n", model.Name)
	fmt.Printf("  %-12s %-14s %-7s %-11s %s\n", "matrix", "shape", "MapID", "partitioned", "rows/pass")
	for _, w := range model.WeightMatrices() {
		sel, err := mapping.SelectMapping(w.Matrix(model.DTypeBytes), memCfg, chunk)
		if err != nil {
			log.Fatal(err)
		}
		part := "no"
		if sel.Partitioned {
			part = fmt.Sprintf("x%d", sel.PartitionsPerRow)
		}
		fmt.Printf("  %-12s %-14s %-7d %-11s %d\n",
			w.Name, fmt.Sprintf("%dx%d", w.Out, w.In), sel.ID, part, sel.RowsPerPass)
	}
}
