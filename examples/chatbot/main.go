// Chatbot: the paper's short-conversation scenario. A voice assistant
// needs its first token within ~250 ms to feel human; this example
// compares TTFT and TTLT of every design on an Alpaca-style conversation
// workload running Llama3-8B on the Jetson AGX Orin.
//
// Run with: go run ./examples/chatbot
package main

import (
	"fmt"
	"log"

	"facil"
)

func main() {
	sys, err := facil.NewSystem("NVIDIA Jetson AGX Orin 64GB", "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s, model: %s\n\n", sys.PlatformName(), sys.ModelName())

	// A short conversation: the user asks a question (22 tokens), the
	// assistant answers with 80 tokens.
	const prefill, decode = 22, 80

	fmt.Printf("%-20s %12s %12s %10s\n", "design", "TTFT", "TTLT", "weights")
	var baseTTFT, baseTTLT float64
	for _, d := range facil.Designs() {
		ttft, err := sys.TTFT(d, prefill)
		if err != nil {
			log.Fatal(err)
		}
		ttlt, err := sys.TTLT(d, prefill, decode)
		if err != nil {
			log.Fatal(err)
		}
		if d == facil.HybridStatic {
			baseTTFT, baseTTLT = ttft, ttlt
		}
		fmt.Printf("%-20s %9.1f ms %9.1f ms %7.1f GB\n",
			d, 1e3*ttft, 1e3*ttlt, float64(sys.WeightFootprint(d))/1e9)
	}

	ttft, err := sys.TTFT(facil.FACIL, prefill)
	if err != nil {
		log.Fatal(err)
	}
	ttlt, err := sys.TTLT(facil.FACIL, prefill, decode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFACIL vs SoC-PIM hybrid baseline: TTFT %.2fx, TTLT %.2fx\n",
		facil.Speedup(baseTTFT, ttft), facil.Speedup(baseTTLT, ttlt))

	const target = 0.25 // the ~250 ms voice-assistant budget
	verdict := func(t float64) string {
		if t <= target {
			return "within the 250 ms voice budget"
		}
		return "misses the 250 ms voice budget"
	}
	base := verdict(baseTTFT)
	ours := verdict(ttft)
	fmt.Printf("baseline first token: %.0f ms (%s)\n", 1e3*baseTTFT, base)
	fmt.Printf("FACIL first token:    %.0f ms (%s)\n", 1e3*ttft, ours)
}
