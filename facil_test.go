package facil

import (
	"testing"
)

func TestPublicSystemRoundTrip(t *testing.T) {
	s, err := NewSystem("NVIDIA Jetson AGX Orin 64GB", "")
	if err != nil {
		t.Fatal(err)
	}
	if s.ModelName() != "Llama3-8B" {
		t.Errorf("default model = %s", s.ModelName())
	}
	base, err := s.TTFT(HybridStatic, 32)
	if err != nil {
		t.Fatal(err)
	}
	fac, err := s.TTFT(FACIL, 32)
	if err != nil {
		t.Fatal(err)
	}
	if sp := Speedup(base, fac); sp < 1.2 {
		t.Errorf("FACIL speedup = %.2f", sp)
	}
	ttlt, err := s.TTLT(FACIL, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ttlt <= fac {
		t.Error("TTLT not above TTFT")
	}
	if s.WeightFootprint(WeightDuplication) != 2*s.WeightFootprint(FACIL) {
		t.Error("duplication footprint wrong")
	}
	if _, err := s.DecodeStep(FACIL, 64); err != nil {
		t.Fatal(err)
	}
	if th, err := s.PrefillThreshold(FACIL); err != nil || th < 1 {
		t.Errorf("threshold = %d, %v", th, err)
	}
}

func TestPublicSystemErrors(t *testing.T) {
	if _, err := NewSystem("Nokia 3310", ""); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := NewSystem("Apple iPhone 15 Pro", "GPT-9"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestDesignsAndPlatforms(t *testing.T) {
	if len(Designs()) != 5 {
		t.Errorf("Designs = %v", Designs())
	}
	if got := FACIL.String(); got != "FACIL" {
		t.Errorf("FACIL.String() = %q", got)
	}
	if len(Platforms()) != 4 {
		t.Errorf("Platforms = %v", Platforms())
	}
	if len(Models()) != 4 {
		t.Errorf("Models = %v", Models())
	}
	if len(ExperimentIDs()) < 10 {
		t.Errorf("ExperimentIDs = %v", ExperimentIDs())
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	out, err := RunExperiment("tab2")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] == "" {
		t.Errorf("tab2 output = %v", out)
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestArenaDualView(t *testing.T) {
	a, err := NewArena("Apple iPhone 15 Pro")
	if err != nil {
		t.Fatal(err)
	}
	tensor, err := a.Pimalloc(1024, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.MapID <= 0 {
		t.Errorf("tensor MapID = %d, want PIM mapping", tensor.MapID)
	}
	if tensor.HugePages != int(tensor.paddedPages()) {
		t.Errorf("HugePages = %d", tensor.HugePages)
	}
	// The page table reports the PIM MapID for the tensor.
	id, err := a.MapIDOf(tensor.VA)
	if err != nil {
		t.Fatal(err)
	}
	if id != tensor.MapID {
		t.Errorf("MapIDOf = %d, tensor says %d", id, tensor.MapID)
	}
	// A whole matrix row stays in one bank under the PIM view...
	first, err := a.ElementLocation(tensor, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := a.ElementLocation(tensor, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if first.Channel != mid.Channel || first.Rank != mid.Rank || first.Bank != mid.Bank {
		t.Errorf("row 0 spans banks: %v vs %v", first, mid)
	}
	// ...while the conventional view scatters the same bytes.
	conv0, err := a.ConventionalLocation(tensor.VA)
	if err != nil {
		t.Fatal(err)
	}
	conv1, err := a.ConventionalLocation(tensor.VA + 32)
	if err != nil {
		t.Fatal(err)
	}
	if conv0.Channel == conv1.Channel {
		t.Errorf("conventional view did not interleave channels: %v vs %v", conv0, conv1)
	}
	// Consecutive matrix rows land on different PUs.
	next, err := a.ElementLocation(tensor, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if next == first {
		t.Error("rows 0 and 1 share a PU location")
	}
	if a.SupportedMappings() < 2 {
		t.Errorf("SupportedMappings = %d", a.SupportedMappings())
	}
	if a.TLBHitRate() <= 0 {
		t.Error("TLB hit rate not accumulating")
	}
	// Bounds checks.
	if _, err := a.ElementLocation(tensor, -1, 0); err == nil {
		t.Error("negative row accepted")
	}
	if _, err := a.Translate(0xdeadbeef0000); err == nil {
		t.Error("unmapped VA translated")
	}
}

// paddedPages computes expected huge-page count for the test above.
func (t *Tensor) paddedPages() int64 {
	const huge = 2 << 20
	return (t.Bytes + huge - 1) / huge
}

func TestArenaFree(t *testing.T) {
	a, err := NewArena("Apple iPhone 15 Pro")
	if err != nil {
		t.Fatal(err)
	}
	w, err := a.Pimalloc(1024, 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(w); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Translate(w.VA); err == nil {
		t.Error("freed tensor still mapped")
	}
	if err := a.Free(w); err == nil {
		t.Error("double free accepted")
	}
}

func TestArenaErrors(t *testing.T) {
	if _, err := NewArena("Nokia"); err == nil {
		t.Error("unknown platform accepted")
	}
	a, err := NewArena("Apple iPhone 15 Pro")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Pimalloc(0, 10, 2); err == nil {
		t.Error("zero rows accepted")
	}
}
